package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/namegen"
)

// Client-side views of the coordinator wire contract (internal/distrib
// defines the canonical types; experiments cannot import it without a
// test-binary import cycle through the root package's bench harness).
// Only the fields the report needs are decoded; the clusterload test
// drives a real coordinator, which keeps these tags honest.
type clusterNameRequest struct {
	Name string `json:"name"`
}

type clusterStatsView struct {
	Epoch   uint64 `json:"epoch"`
	Strings int    `json:"strings"`
	Cluster struct {
		CandGenWallMs float64 `json:"cand_gen_wall_ms"`
		VerifyWallMs  float64 `json:"verify_wall_ms"`
	} `json:"cluster"`
	Workers []struct {
		Worker string `json:"worker"`
	} `json:"workers"`
}

// ClusterLoadConfig parameterizes `tsjexp -load -cluster=URL`: the same
// synthetic sign-up stream as the in-process load generator, but driven
// over HTTP at a tsjserve coordinator, so the routing/scatter overhead
// of the cluster layer can be split out from the worker-side engine
// time.
type ClusterLoadConfig struct {
	// Coordinator is the base URL of a running tsjserve -coordinator.
	Coordinator string
	// Seed/NumNames generate the workload (defaults 42 / 2000 — an
	// over-the-wire run is orders slower than the in-process sweep).
	Seed     int64
	NumNames int
	// Clients is the number of concurrent client goroutines (default
	// 2*GOMAXPROCS via the shared load defaults; capped at NumNames).
	Clients int
	// QueriesPerAdd interleaves reads with the write stream.
	QueriesPerAdd int
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
}

func (c ClusterLoadConfig) withDefaults() ClusterLoadConfig {
	base := StreamLoadConfig{
		Seed:          c.Seed,
		NumNames:      c.NumNames,
		Clients:       c.Clients,
		QueriesPerAdd: c.QueriesPerAdd,
	}
	if base.NumNames <= 0 {
		base.NumNames = 2000
	}
	base = base.withDefaults()
	c.Seed, c.NumNames, c.Clients, c.QueriesPerAdd =
		base.Seed, base.NumNames, base.Clients, base.QueriesPerAdd
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// ClusterLoad drives the coordinator with a concurrent add/query stream
// and reports, per operation, the client-observed end-to-end latency
// distribution next to the worker-side engine wall time sampled from
// the aggregated /stats before and after the run. The gap between the
// two is what the cluster layer costs: routing, scatter/merge, and the
// network.
func ClusterLoad(cfg ClusterLoadConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	names := namegen.Generate(namegen.Config{Seed: cfg.Seed, NumNames: cfg.NumNames})
	client := httpx.NewClient(cfg.Timeout)
	ctx := context.Background()

	var before clusterStatsView
	if err := httpx.GetJSON(ctx, client, cfg.Coordinator+"/stats", &before, cfg.Timeout, 4<<20); err != nil {
		return nil, fmt.Errorf("coordinator /stats: %w (is %s a tsjserve -coordinator?)", err, cfg.Coordinator)
	}

	// Balanced split covering every name, exactly like the in-process
	// generator: client c works on names[c*N/C : (c+1)*N/C].
	type sample struct{ add, query []time.Duration }
	samples := make([]sample, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			slice := names[c*len(names)/cfg.Clients : (c+1)*len(names)/cfg.Clients]
			for i, n := range slice {
				t0 := time.Now()
				var add json.RawMessage
				if err := httpx.PostJSON(ctx, client, cfg.Coordinator+"/add",
					clusterNameRequest{Name: n}, &add, cfg.Timeout, 4<<20); err != nil {
					errs[c] = fmt.Errorf("add %q: %w", n, err)
					return
				}
				samples[c].add = append(samples[c].add, time.Since(t0))
				for q := 0; q < cfg.QueriesPerAdd; q++ {
					probe := slice[(i*7+q)%(i+1)]
					t0 = time.Now()
					var qr json.RawMessage
					if err := httpx.PostJSON(ctx, client, cfg.Coordinator+"/query",
						clusterNameRequest{Name: probe}, &qr, cfg.Timeout, 4<<20); err != nil {
						errs[c] = fmt.Errorf("query %q: %w", probe, err)
						return
					}
					samples[c].query = append(samples[c].query, time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var after clusterStatsView
	if err := httpx.GetJSON(ctx, client, cfg.Coordinator+"/stats", &after, cfg.Timeout, 4<<20); err != nil {
		return nil, fmt.Errorf("coordinator /stats after run: %w", err)
	}

	var adds, queries []time.Duration
	for _, s := range samples {
		adds = append(adds, s.add...)
		queries = append(queries, s.query...)
	}

	t := &Table{
		ID: "cluster-load",
		Title: fmt.Sprintf(
			"Cluster end-to-end vs worker engine latency (%s, %d shards, %d names, %d clients, %d queries/add)",
			cfg.Coordinator, len(after.Workers), cfg.NumNames, cfg.Clients, cfg.QueriesPerAdd),
		Header: []string{"op", "count", "ops/s", "p50", "p95", "max"},
	}
	secs := elapsed.Seconds()
	for _, row := range []struct {
		op string
		ds []time.Duration
	}{{"add", adds}, {"query", queries}} {
		if len(row.ds) == 0 {
			continue
		}
		sort.Slice(row.ds, func(i, j int) bool { return row.ds[i] < row.ds[j] })
		t.AddRow(row.op, len(row.ds),
			fmt.Sprintf("%.0f", float64(len(row.ds))/secs),
			fmtMs(percentile(row.ds, 0.50)),
			fmtMs(percentile(row.ds, 0.95)),
			fmtMs(row.ds[len(row.ds)-1]))
	}

	// The split: worker-side engine wall (candidate generation + verify
	// across every worker, deltas over the run) against the total
	// client-observed time. Client time sums across concurrent clients,
	// so compare against clients x wall.
	engineMs := (after.Cluster.CandGenWallMs - before.Cluster.CandGenWallMs) +
		(after.Cluster.VerifyWallMs - before.Cluster.VerifyWallMs)
	var clientMs float64
	for _, ds := range [][]time.Duration{adds, queries} {
		for _, d := range ds {
			clientMs += float64(d.Microseconds()) / 1000
		}
	}
	overheadMs := clientMs - engineMs
	if overheadMs < 0 {
		overheadMs = 0
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worker engine wall %.0fms of %.0fms total client time (%.0f%%); the other %.0fms is coordinator routing, scatter/merge, and the network",
			engineMs, clientMs, 100*engineMs/max(clientMs, 1), overheadMs),
		fmt.Sprintf("wall %.3fs; cluster grew %d -> %d strings across %d workers (epoch %d)",
			secs, before.Strings, after.Strings, len(after.Workers), after.Epoch))
	return t, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
