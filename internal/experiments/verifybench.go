package experiments

import (
	"fmt"

	"repro/internal/tsj"
)

// VerifyBenchConfig parameterizes the verify-stage timing sweep
// (tsjexp -verify).
type VerifyBenchConfig struct {
	Seed     int64
	NumNames int       // 0 = 10000
	Ts       []float64 // thresholds; nil = {0.1, 0.2, 0.3}
}

// VerifyBench contrasts the threshold-aware bounded verifier against the
// exact unbounded one across thresholds, reporting the verify-stage wall
// time (the dedup+filter+verify MapReduce job, measured in-process) plus
// the stats that explain it. Result sets are identical by construction
// (asserted by the equivalence tests); this table is how BENCH
// trajectories track the verify-stage speedup over time.
func VerifyBench(cfg VerifyBenchConfig) *Table {
	if cfg.NumNames <= 0 {
		cfg.NumNames = 10000
	}
	if len(cfg.Ts) == 0 {
		cfg.Ts = []float64{0.1, 0.2, 0.3}
	}
	w := Workload{Seed: cfg.Seed, NumNames: cfg.NumNames}
	c := w.Corpus()

	tab := &Table{
		ID:     "verify",
		Title:  fmt.Sprintf("Verify-stage wall time, bounded vs exact (n=%d)", cfg.NumNames),
		Header: []string{"T", "verifier", "verify-wall-ms", "verified", "budget-pruned", "results"},
		Notes: []string{
			"verify-wall-ms is the in-process reduce-phase wall of the dedup+filter+verify job (the dedup shuffle is charged to candidate generation)",
			"budget-pruned counts pairs the SLD budget rejected before the alignment finished",
		},
	}
	for _, t := range cfg.Ts {
		for _, mode := range []struct {
			name            string
			disableBounded  bool
			disableTokenLDC bool
		}{
			{"bounded", false, false},
			{"bounded-nocache", false, true},
			{"exact", true, false},
		} {
			opts := tsj.DefaultOptions()
			opts.Threshold = t
			opts.DisableBoundedVerify = mode.disableBounded
			opts.DisableTokenLDCache = mode.disableTokenLDC
			_, st, err := tsj.SelfJoin(c, opts)
			if err != nil {
				// Only reachable with a threshold outside [0, 1) in
				// cfg.Ts — a programming error in the caller (tsjexp
				// validates before calling).
				panic(err)
			}
			tab.AddRow(
				fmt.Sprintf("%.2f", t),
				mode.name,
				fmt.Sprintf("%.2f", float64(st.Pipeline.ReduceWallOf("dedup-verify").Microseconds())/1000),
				st.Verified,
				st.BudgetPruned,
				st.Results,
			)
		}
	}
	return tab
}
