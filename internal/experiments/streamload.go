package experiments

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/namegen"
	"repro/internal/stream"
)

// StreamLoadConfig parameterizes the serving-layer load generator behind
// `tsjexp -load`: a synthetic sign-up stream driven at the ShardedMatcher
// by concurrent clients, measured per shard count.
type StreamLoadConfig struct {
	// Seed/NumNames generate the workload (defaults 42 / 20000).
	Seed     int64
	NumNames int
	// Clients is the number of concurrent client goroutines (default
	// 2*GOMAXPROCS — some writers, some readers; capped at NumNames so
	// every client has work).
	Clients int
	// QueriesPerAdd interleaves reads with the write stream: each client
	// issues this many Queries after every Add (0 = write-only).
	QueriesPerAdd int
	// Threshold is the NSLD threshold (default 0.1).
	Threshold float64
	// ShardCounts lists the shard counts to sweep (default 1, 2, 4,
	// GOMAXPROCS deduplicated).
	ShardCounts []int
}

func (c StreamLoadConfig) withDefaults() StreamLoadConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.NumNames <= 0 {
		c.NumNames = 20000
	}
	if c.Clients <= 0 {
		c.Clients = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Clients > c.NumNames {
		c.Clients = c.NumNames
	}
	if c.QueriesPerAdd < 0 {
		c.QueriesPerAdd = 0
	}
	if c.Threshold == 0 {
		c.Threshold = 0.1
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = defaultShardCounts()
	}
	return c
}

func defaultShardCounts() []int {
	var out []int
	for _, n := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if !slices.Contains(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// StreamLoad runs the load generator: for each shard count it replays the
// same synthetic stream from Clients goroutines (each Add followed by
// QueriesPerAdd Queries of a random earlier name) and reports wall-clock
// throughput. The first row is the baseline; the last column is the
// speedup over it.
func StreamLoad(cfg StreamLoadConfig) *Table {
	cfg = cfg.withDefaults()
	names := namegen.Generate(namegen.Config{Seed: cfg.Seed, NumNames: cfg.NumNames})

	t := &Table{
		ID: "load",
		Title: fmt.Sprintf(
			"ShardedMatcher throughput vs shards (%d names, %d clients, %d queries/add, T=%g, GOMAXPROCS=%d)",
			cfg.NumNames, cfg.Clients, cfg.QueriesPerAdd, cfg.Threshold, runtime.GOMAXPROCS(0)),
		Header: []string{"shards", "elapsed", "adds/s", "queries/s", "ops/s", "speedup"},
	}
	var base float64
	for _, shards := range cfg.ShardCounts {
		elapsed, adds, queries := runStreamLoad(cfg, names, shards)
		secs := elapsed.Seconds()
		ops := float64(adds+queries) / secs
		if base == 0 {
			base = ops
		}
		t.AddRow(shards,
			fmt.Sprintf("%.3fs", secs),
			fmt.Sprintf("%.0f", float64(adds)/secs),
			fmt.Sprintf("%.0f", float64(queries)/secs),
			fmt.Sprintf("%.0f", ops),
			fmt.Sprintf("%.2fx", ops/base))
	}
	t.Notes = append(t.Notes,
		"same stream each row; speedup is ops/s over the first row")
	return t
}

// runStreamLoad drives one shard count and returns the wall time and the
// operation counts.
func runStreamLoad(cfg StreamLoadConfig, names []string, shards int) (time.Duration, int, int) {
	m, err := stream.NewShardedMatcher(stream.Options{Threshold: cfg.Threshold}, shards)
	if err != nil {
		panic(err)
	}
	defer m.Close()

	// Balanced split covering every name: client c works on
	// names[c*N/C : (c+1)*N/C].
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			slice := names[c*len(names)/cfg.Clients : (c+1)*len(names)/cfg.Clients]
			for i, n := range slice {
				m.Add(n)
				for q := 0; q < cfg.QueriesPerAdd; q++ {
					// Probe a name this client already inserted: a mixed
					// read/write stream with guaranteed hits.
					m.Query(slice[(i*7+q)%(i+1)])
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed, len(names), len(names) * cfg.QueriesPerAdd
}
