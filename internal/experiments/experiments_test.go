package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyWorkload keeps the figure runners fast in unit tests; the shapes
// still hold at this scale.
func tinyWorkload() Workload {
	return Workload{Seed: 7, NumNames: 800, HMJNames: 400}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig1Shape(t *testing.T) {
	// Fig1 runs only two joins, so it affords a larger corpus; the dedup
	// strategy contrast needs enough candidate pairs to be visible.
	tbl := Fig1(Workload{Seed: 7, NumNames: 3000, HMJNames: 400})
	if len(tbl.Rows) != len(Machines) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Machines))
	}
	// Runtime decreases monotonically with machines for both strategies.
	for col := 1; col <= 2; col++ {
		prev := parseF(t, tbl.Rows[0][col])
		for i := 1; i < len(tbl.Rows); i++ {
			cur := parseF(t, tbl.Rows[i][col])
			if cur > prev+1e-9 {
				t.Fatalf("col %d not monotone at row %d: %v -> %v", col, i, prev, cur)
			}
			prev = cur
		}
	}
	// Speedup is sublinear: 10x machines gives < 10x speedup. At this
	// tiny test scale the hot-key skew caps the speedup well below the
	// calibration target of 3.8; the default workload reaches ~3.8 (see
	// EXPERIMENTS.md).
	first := parseF(t, tbl.Rows[0][1])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][1])
	if sp := first / last; sp >= 10 || sp < 1.2 {
		t.Fatalf("one-string speedup %v outside plausible (1.2, 10)", sp)
	}
	// One-string is faster than both-strings where task startup dominates
	// (low machine counts; paper: 13-32% faster everywhere at 44M-name
	// scale). At this tiny test scale the two converge at high machine
	// counts, so only require a clear win at 100 machines and near-parity
	// (within 10%) elsewhere.
	if one, both := parseF(t, tbl.Rows[0][1]), parseF(t, tbl.Rows[0][2]); one >= both {
		t.Fatalf("at 100 machines one-string must win: %v vs %v", one, both)
	}
	for i, r := range tbl.Rows {
		if one, both := parseF(t, r[1]), parseF(t, r[2]); one > both*1.10 {
			t.Fatalf("row %d: one-string much slower than both-strings: %v vs %v", i, one, both)
		}
	}
}

func TestFig2And4Shapes(t *testing.T) {
	w := tinyWorkload()
	runtimes, counts := sweepT(w)
	for ti := range Thresholds {
		r := runtimes[ti]
		// Exact skips the similar-token jobs entirely: strictly cheaper.
		if r[2] > r[0] {
			t.Fatalf("T=%v: exact-token-matching slower than fuzzy: %v vs %v",
				Thresholds[ti], r[2], r[0])
		}
		cnt := counts[ti]
		// Approximations cannot find more pairs than fuzzy.
		if cnt[1] > cnt[0] || cnt[2] > cnt[0] {
			t.Fatalf("T=%v: approximation found more pairs: %v", Thresholds[ti], cnt)
		}
		// Greedy only loses pairs to misalignment; exact loses pairs to
		// missing candidates as well, so exact <= greedy is the expected
		// dominance on name data.
		if cnt[2] > cnt[1] {
			t.Logf("T=%v: exact found more than greedy (%d > %d) — possible but rare",
				Thresholds[ti], cnt[2], cnt[1])
		}
	}
	// Pair counts grow with T for the exact algorithm.
	if counts[0][0] > counts[len(counts)-1][0] {
		t.Fatalf("fuzzy pairs should not shrink as T grows: %v -> %v",
			counts[0][0], counts[len(counts)-1][0])
	}
	// Table rendering round-trips.
	tbl := tableFromSweepT(runtimes)
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "fuzzy-token-matching") {
		t.Fatal("render lost the header")
	}
}

func TestFig6NSLDWins(t *testing.T) {
	tbl := Fig6(tinyWorkload())
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig6 rows = %d, want 4", len(tbl.Rows))
	}
	aucs := make(map[string]float64)
	for _, r := range tbl.Rows {
		aucs[r[0]] = parseF(t, r[1])
	}
	nsld := aucs["NSLD"]
	if nsld < 0.8 {
		t.Fatalf("NSLD AUC %v suspiciously low", nsld)
	}
	for name, auc := range aucs {
		if name == "NSLD" {
			continue
		}
		if auc > nsld {
			t.Fatalf("%s AUC %v beats NSLD %v — the paper's Fig. 6 shape is violated", name, auc, nsld)
		}
	}
}

func TestFig7TSJWins(t *testing.T) {
	tbl := Fig7(tinyWorkload())
	if len(tbl.Rows) != len(Machines) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		tsjSec := parseF(t, r[1])
		hmjSec := parseF(t, r[2])
		if hmjSec <= tsjSec {
			t.Fatalf("machines=%s: HMJ (%v) not slower than TSJ (%v)", r[0], hmjSec, tsjSec)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("s", int64(7))
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "b", "2.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := tinyWorkload().Corpus()
	b := tinyWorkload().Corpus()
	if a.NumStrings() != b.NumStrings() || a.NumTokens() != b.NumTokens() {
		t.Fatal("workload corpus not deterministic")
	}
}
