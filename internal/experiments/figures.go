package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fuzzyset"
	"repro/internal/hmj"
	"repro/internal/namegen"
	"repro/internal/roc"
	"repro/internal/stream"
	"repro/internal/token"
	"repro/internal/tsj"
)

// Fig1 reproduces Fig. 1: TSJ runtime while varying the number of
// MapReduce machines and the de-duplication strategy (grouping-on-one-
// string vs grouping-on-both-strings). Paper shape: both scale out with a
// ~3.8x speedup over 10x machines; one-string is 13–32% faster.
func Fig1(w Workload) *Table {
	c := w.Corpus()
	opts := tsj.DefaultOptions()
	opts.MapTasks = simMapTasks

	opts.Dedup = tsj.GroupOnOneString
	_, stOne, err := tsj.SelfJoin(c, opts)
	if err != nil {
		panic(err)
	}
	opts.Dedup = tsj.GroupOnBothStrings
	_, stBoth, err := tsj.SelfJoin(c, opts)
	if err != nil {
		panic(err)
	}

	cluster := calibrate(&stOne.Pipeline)
	t := &Table{
		ID:     "fig1",
		Title:  "TSJ runtime vs machines and deduping strategy (simulated seconds)",
		Header: []string{"machines", "grouping-on-one-string", "grouping-on-both-strings"},
	}
	var first, last [2]float64
	for _, m := range Machines {
		cl := cluster(m)
		one := cl.PipelineSeconds(&stOne.Pipeline)
		both := cl.PipelineSeconds(&stBoth.Pipeline)
		t.AddRow(m, fmtSecs(one), fmtSecs(both))
		if m == Machines[0] {
			first = [2]float64{one, both}
		}
		if m == Machines[len(Machines)-1] {
			last = [2]float64{one, both}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speedup 100->1000 machines: one-string %.2fx, both-strings %.2fx (paper: ~3.8x)",
			first[0]/last[0], first[1]/last[1]),
		fmt.Sprintf("one-string faster by %.0f%%..%.0f%% (paper: 13%%..32%%)",
			100*(1-minf(first[0]/first[1], last[0]/last[1])),
			100*(1-maxf(first[0]/first[1], last[0]/last[1]))),
	)
	return t
}

// sweepT runs the three matching/aligning algorithms over the T sweep,
// returning per-threshold simulated runtimes and discovered-pair counts.
// Shared by Fig2 (runtime) and Fig4 (accuracy).
func sweepT(w Workload) (runtimes [][3]float64, counts [][3]int64) {
	c := w.Corpus()
	runtimes = make([][3]float64, len(Thresholds))
	counts = make([][3]int64, len(Thresholds))
	var calOnce func(machines int) func(*tsj.Stats) float64
	for ti, T := range Thresholds {
		for ai, cfg := range []struct {
			matching tsj.Matching
			aligning tsj.Aligning
		}{
			{tsj.FuzzyTokenMatching, tsj.HungarianAligning}, // fuzzy-token-matching
			{tsj.FuzzyTokenMatching, tsj.GreedyAligning},    // greedy-token-aligning
			{tsj.ExactTokenMatching, tsj.HungarianAligning}, // exact-token-matching
		} {
			opts := tsj.DefaultOptions()
			opts.MapTasks = simMapTasks
			opts.Threshold = T
			opts.Matching = cfg.matching
			opts.Aligning = cfg.aligning
			res, st, err := tsj.SelfJoin(c, opts)
			if err != nil {
				panic(err)
			}
			if calOnce == nil {
				cal := calibrate(&st.Pipeline)
				calOnce = func(machines int) func(*tsj.Stats) float64 {
					cl := cal(machines)
					return func(s *tsj.Stats) float64 { return cl.PipelineSeconds(&s.Pipeline) }
				}
			}
			runtimes[ti][ai] = calOnce(1000)(st)
			counts[ti][ai] = int64(len(res))
		}
	}
	return runtimes, counts
}

// Fig2 reproduces Fig. 2: runtime while varying the NSLD threshold T for
// fuzzy-token-matching, greedy-token-aligning and exact-token-matching.
// Paper shape: greedy saves ~13% on average (more at large T); exact
// saves ~60% and stays nearly flat in T.
func Fig2(w Workload) *Table {
	runtimes, _ := sweepT(w)
	return tableFromSweepT(runtimes)
}

func tableFromSweepT(runtimes [][3]float64) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "TSJ runtime vs NSLD threshold T and matching/aligning algorithm (simulated seconds, 1000 machines)",
		Header: []string{"T", "fuzzy-token-matching", "greedy-token-aligning", "exact-token-matching"},
	}
	var gSave, eSave float64
	for ti, T := range Thresholds {
		r := runtimes[ti]
		t.AddRow(T, fmtSecs(r[0]), fmtSecs(r[1]), fmtSecs(r[2]))
		gSave += 1 - r[1]/r[0]
		eSave += 1 - r[2]/r[0]
	}
	n := float64(len(Thresholds))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean runtime saving over fuzzy: greedy %.0f%% (paper: 13%%), exact %.0f%% (paper: 60%%)",
			100*gSave/n, 100*eSave/n))
	return t
}

// Fig4 reproduces Fig. 4: the number of discovered pairs (and hence the
// recall of the approximations) while varying T. Paper shape: greedy
// recall 1.0 -> 0.99993; exact recall 1.0 -> 0.86655 as T grows to 0.225.
func Fig4(w Workload) *Table {
	_, counts := sweepT(w)
	t := &Table{
		ID:     "fig4",
		Title:  "Discovered pairs vs NSLD threshold T (recall relative to fuzzy-token-matching)",
		Header: []string{"T", "fuzzy pairs", "greedy pairs", "exact pairs", "recall(greedy)", "recall(exact)"},
	}
	for ti, T := range Thresholds {
		cnt := counts[ti]
		t.AddRow(T, cnt[0], cnt[1], cnt[2],
			fmtRecall(ratio(cnt[1], cnt[0])), fmtRecall(ratio(cnt[2], cnt[0])))
	}
	t.Notes = append(t.Notes,
		"paper: recall(greedy) 1.0 -> 0.99993, recall(exact) 1.0 -> 0.86655 as T -> 0.225")
	return t
}

// sweepM is the M counterpart of sweepT (Figs. 3 and 5), at T = 0.1.
func sweepM(w Workload) (runtimes [][3]float64, counts [][3]int64) {
	c := w.Corpus()
	runtimes = make([][3]float64, len(MaxFreqs))
	counts = make([][3]int64, len(MaxFreqs))
	var calOnce func(*tsj.Stats) float64
	for mi, M := range MaxFreqs {
		for ai, cfg := range []struct {
			matching tsj.Matching
			aligning tsj.Aligning
		}{
			{tsj.FuzzyTokenMatching, tsj.HungarianAligning},
			{tsj.FuzzyTokenMatching, tsj.GreedyAligning},
			{tsj.ExactTokenMatching, tsj.HungarianAligning},
		} {
			opts := tsj.DefaultOptions()
			opts.MapTasks = simMapTasks
			opts.MaxTokenFreq = M
			opts.Matching = cfg.matching
			opts.Aligning = cfg.aligning
			res, st, err := tsj.SelfJoin(c, opts)
			if err != nil {
				panic(err)
			}
			if calOnce == nil {
				cal := calibrate(&st.Pipeline)
				cl := cal(1000)
				calOnce = func(s *tsj.Stats) float64 { return cl.PipelineSeconds(&s.Pipeline) }
			}
			runtimes[mi][ai] = calOnce(st)
			counts[mi][ai] = int64(len(res))
		}
	}
	return runtimes, counts
}

// Fig3 reproduces Fig. 3: runtime while varying the max token frequency M.
// Paper shape: greedy saves ~9%, exact ~33%, both fairly stable across M.
func Fig3(w Workload) *Table {
	runtimes, _ := sweepM(w)
	t := &Table{
		ID:     "fig3",
		Title:  "TSJ runtime vs max-frequency M and matching/aligning algorithm (simulated seconds, 1000 machines, T=0.1)",
		Header: []string{"M", "fuzzy-token-matching", "greedy-token-aligning", "exact-token-matching"},
	}
	var gSave, eSave float64
	for mi, M := range MaxFreqs {
		r := runtimes[mi]
		t.AddRow(M, fmtSecs(r[0]), fmtSecs(r[1]), fmtSecs(r[2]))
		gSave += 1 - r[1]/r[0]
		eSave += 1 - r[2]/r[0]
	}
	n := float64(len(MaxFreqs))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean runtime saving over fuzzy: greedy %.0f%% (paper: 9%%), exact %.0f%% (paper: 33%%)",
			100*gSave/n, 100*eSave/n))
	return t
}

// Fig5 reproduces Fig. 5: discovered pairs (recall) while varying M.
// Paper shape: recall(greedy) ~0.999999 flat; recall(exact) 0.974–0.985.
func Fig5(w Workload) *Table {
	_, counts := sweepM(w)
	t := &Table{
		ID:     "fig5",
		Title:  "Discovered pairs vs max-frequency M (recall relative to fuzzy-token-matching, T=0.1)",
		Header: []string{"M", "fuzzy pairs", "greedy pairs", "exact pairs", "recall(greedy)", "recall(exact)"},
	}
	for mi, M := range MaxFreqs {
		cnt := counts[mi]
		t.AddRow(M, cnt[0], cnt[1], cnt[2],
			fmtRecall(ratio(cnt[1], cnt[0])), fmtRecall(ratio(cnt[2], cnt[0])))
	}
	t.Notes = append(t.Notes,
		"paper: recall(greedy) ~0.999999 across M; recall(exact) between 0.974 and 0.985")
	return t
}

// Fig6 reproduces Fig. 6: ROC curves of NSLD vs the weighted set-based
// fuzzy measures when predicting fraudulent accounts from the distance
// between the old and new names on an account. Paper shape: NSLD
// dominates FJaccard/FCosine/FDice.
func Fig6(w Workload) *Table {
	nc := w.NumChanges
	if nc <= 0 {
		nc = 10000 // the paper's sample size
	}
	pairs := namegen.NameChanges(namegen.ChangeConfig{
		Seed:     w.Seed,
		NumLegit: nc / 2,
		NumFraud: nc - nc/2,
	})
	// Weigh tokens by IDF over the old names, mirroring the "weighted
	// versions" of the set-based measures.
	oldNames := make([]string, len(pairs))
	for i, p := range pairs {
		oldNames[i] = p.Old
	}
	idf := fuzzyset.IDFWeights(token.BuildCorpus(oldNames, token.WhitespaceAndPunct))
	fopt := fuzzyset.Options{TokenThreshold: 0.75, Weights: idf}

	labels := make([]bool, len(pairs))
	nsldScores := make([]float64, len(pairs))
	fjac := make([]float64, len(pairs))
	fcos := make([]float64, len(pairs))
	fdice := make([]float64, len(pairs))
	for i, p := range pairs {
		a := token.WhitespaceAndPunct(p.Old)
		b := token.WhitespaceAndPunct(p.New)
		labels[i] = p.Fraud
		nsldScores[i] = core.NSLD(a, b)
		fjac[i] = fuzzyset.Distance(fuzzyset.FJaccard, a, b, fopt)
		fcos[i] = fuzzyset.Distance(fuzzyset.FCosine, a, b, fopt)
		fdice[i] = fuzzyset.Distance(fuzzyset.FDice, a, b, fopt)
	}

	t := &Table{
		ID:     "fig6",
		Title:  "ROC of NSLD vs weighted set-based fuzzy measures for fraud prediction",
		Header: []string{"measure", "AUC", "TPR@FPR=0.01", "TPR@FPR=0.05", "TPR@FPR=0.10"},
	}
	add := func(name string, scores []float64) {
		t.AddRow(name,
			fmtRecall(roc.AUC(scores, labels)),
			fmtRecall(roc.AtFPR(scores, labels, 0.01)),
			fmtRecall(roc.AtFPR(scores, labels, 0.05)),
			fmtRecall(roc.AtFPR(scores, labels, 0.10)))
	}
	add("NSLD", nsldScores)
	add("weighted FJaccard", fjac)
	add("weighted FCosine", fcos)
	add("weighted FDice", fdice)
	t.Notes = append(t.Notes, "paper: NSLD is superior to all set-based fuzzy measures")
	return t
}

// Fig7 reproduces Fig. 7: TSJ vs the Hybrid Metric Joiner while varying
// machines. Paper shape: TSJ is 12–15x faster; HMJ does not finish on 100
// machines in reasonable time.
func Fig7(w Workload) *Table {
	n := w.HMJNames
	if n <= 0 {
		n = w.NumNames
	}
	sub := w
	sub.NumNames = n
	c := sub.Corpus()

	opts := tsj.DefaultOptions()
	opts.MapTasks = simMapTasks
	_, st, err := tsj.SelfJoin(c, opts)
	if err != nil {
		panic(err)
	}

	metric := func(a, b token.TokenizedString) float64 { return core.NSLD(a, b) }
	distCost := avgVerifyCost(c)
	_, hmjPipe := hmj.SelfJoin(c.Strings, metric, opts.Threshold, hmj.Config{
		Seed:     w.Seed,
		DistCost: distCost,
		MapTasks: simMapTasks,
	})

	cluster := calibrate(&st.Pipeline)
	t := &Table{
		ID:     "fig7",
		Title:  "TSJ vs Hybrid Metric Joiner runtime vs machines (simulated seconds)",
		Header: []string{"machines", "TSJ", "HMJ", "HMJ/TSJ"},
	}
	for _, m := range Machines {
		cl := cluster(m)
		tsjSec := cl.PipelineSeconds(&st.Pipeline)
		hmjSec := cl.PipelineSeconds(hmjPipe)
		t.AddRow(m, fmtSecs(tsjSec), fmtSecs(hmjSec), fmtSecs(hmjSec/tsjSec))
	}
	t.Notes = append(t.Notes,
		"paper: TSJ 12-15x faster than HMJ; HMJ did not finish on 100 machines in reasonable time")
	return t
}

// Funnel renders the candidate-filter funnel across the T sweep: raw
// candidates generated with and without the prefix filter, then each
// pruning stage — prefix (positional/length at probe time), the Sec.
// III-E filters, the verify-stage SLD budget — down to verified pairs and
// results. It is the end-to-end view of where candidate work dies.
func Funnel(w Workload) *Table {
	c := w.Corpus()
	t := &Table{
		ID:    "funnel",
		Title: "Candidate filter funnel vs NSLD threshold T (default join configuration)",
		Header: []string{"T", "generated(no-prefix)", "generated(prefix)", "prefix-pruned",
			"seg-pruned", "deduped", "len-pruned", "lb-pruned", "verified", "budget-pruned", "results",
			"lane-fill%"},
	}
	for _, T := range Thresholds {
		opts := tsj.DefaultOptions()
		opts.MapTasks = simMapTasks
		opts.Threshold = T

		opts.DisablePrefixFilter = true
		opts.DisableSegmentPrefixFilter = true
		_, plain, err := tsj.SelfJoin(c, opts)
		if err != nil {
			panic(err)
		}
		opts.DisablePrefixFilter = false
		opts.DisableSegmentPrefixFilter = false
		_, st, err := tsj.SelfJoin(c, opts)
		if err != nil {
			panic(err)
		}
		laneFill := "n/a"
		if st.SIMDKernels > 0 {
			laneFill = fmt.Sprintf("%.1f",
				100*float64(st.SIMDLanes)/(float64(st.SIMDKernels)*float64(core.BatchKernelWidth())))
		}
		t.AddRow(T,
			plain.SharedTokenCandidates+plain.SimilarTokenCandidates,
			st.SharedTokenCandidates+st.SimilarTokenCandidates,
			st.PrefixPruned, st.SegPrefixPruned, st.DedupedCandidates, st.LengthPruned, st.LBPruned,
			st.Verified, st.BudgetPruned, st.Results, laneFill)
	}
	t.Notes = append(t.Notes,
		"generated counts raw shared+similar candidate records before dedup; both runs return identical results",
		"prefix-pruned counts pairs rejected by the positional/length filters at their first common prefix token",
		"seg-pruned counts posting entries the segment prefix filter excluded from the similar-token expansion",
		"lane-fill% is occupied kernel lanes over capacity in the batched verify stage (n/a without a live kernel)",
	)
	return t
}

// SegmentFunnel renders the streaming similar-token probe funnel across a
// T sweep: every workload name is streamed through the sequential matcher
// with and without the segment prefix filter, and the per-stage counters
// — probe tokens pruned, window fingerprints probed, tokens reaching the
// token-NLD check, tokens similar — show where segment-probe work dies,
// next to the candidate-generation wall clock of both configurations.
func SegmentFunnel(w Workload) *Table {
	names := namegen.Generate(namegen.Config{Seed: w.Seed, NumNames: w.NumNames})
	t := &Table{
		ID:    "segfunnel",
		Title: "Streaming segment-probe funnel vs NSLD threshold T (sequential matcher)",
		Header: []string{"T", "seg-pruned", "keys-probed(no-filter)", "keys-probed", "tokens-checked",
			"tokens-similar", "candgen-ms(no-filter)", "candgen-ms"},
	}
	for _, T := range []float64{0.05, 0.1, 0.2} {
		run := func(disable bool) stream.MatcherStats {
			m, err := stream.NewMatcher(stream.Options{Threshold: T, DisableSegmentPrefixFilter: disable})
			if err != nil {
				panic(err)
			}
			for _, n := range names {
				m.Add(n)
			}
			return m.Stats()
		}
		plain := run(true)
		st := run(false)
		ms := func(d time.Duration) string {
			return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
		}
		t.AddRow(T, st.SegPrefixPruned, plain.SegKeysProbed, st.SegKeysProbed,
			st.SegTokensChecked, st.SegTokensSimilar,
			ms(plain.CandGenWall), ms(st.CandGenWall))
	}
	t.Notes = append(t.Notes,
		"both configurations return identical match streams; the filter only sheds probe work",
		"seg-pruned counts probe tokens whose segment probe was skipped (storage-side pruning additionally shrinks the index)",
	)
	return t
}

// avgVerifyCost estimates the work units of one NSLD evaluation on this
// corpus (bigraph construction + Hungarian), so HMJ's distance calls are
// charged comparably to TSJ's verifications.
func avgVerifyCost(c *token.Corpus) float64 {
	var lenSum, tokSum float64
	for _, s := range c.Strings {
		lenSum += float64(s.AggregateLen())
		tokSum += float64(s.Count())
	}
	n := float64(len(c.Strings))
	if n == 0 {
		return 1
	}
	avgLen := lenSum / n
	avgTok := tokSum / n
	return avgLen*avgLen + avgTok*avgTok*avgTok
}

// All runs every figure in order.
func All(w Workload) []*Table {
	r2, c2 := sweepT(w)
	fig2 := tableFromSweepT(r2)
	fig4 := &Table{
		ID:     "fig4",
		Title:  "Discovered pairs vs NSLD threshold T (recall relative to fuzzy-token-matching)",
		Header: []string{"T", "fuzzy pairs", "greedy pairs", "exact pairs", "recall(greedy)", "recall(exact)"},
	}
	for ti, T := range Thresholds {
		cnt := c2[ti]
		fig4.AddRow(T, cnt[0], cnt[1], cnt[2],
			fmtRecall(ratio(cnt[1], cnt[0])), fmtRecall(ratio(cnt[2], cnt[0])))
	}
	r3, c3 := sweepM(w)
	_ = r3
	fig3 := &Table{
		ID:     "fig3",
		Title:  "TSJ runtime vs max-frequency M and matching/aligning algorithm (simulated seconds, 1000 machines, T=0.1)",
		Header: []string{"M", "fuzzy-token-matching", "greedy-token-aligning", "exact-token-matching"},
	}
	for mi, M := range MaxFreqs {
		r := r3[mi]
		fig3.AddRow(M, fmtSecs(r[0]), fmtSecs(r[1]), fmtSecs(r[2]))
	}
	fig5 := &Table{
		ID:     "fig5",
		Title:  "Discovered pairs vs max-frequency M (recall relative to fuzzy-token-matching, T=0.1)",
		Header: []string{"M", "fuzzy pairs", "greedy pairs", "exact pairs", "recall(greedy)", "recall(exact)"},
	}
	for mi, M := range MaxFreqs {
		cnt := c3[mi]
		fig5.AddRow(M, cnt[0], cnt[1], cnt[2],
			fmtRecall(ratio(cnt[1], cnt[0])), fmtRecall(ratio(cnt[2], cnt[0])))
	}
	return []*Table{Fig1(w), fig2, fig3, fig4, fig5, Fig6(w), Fig7(w), Funnel(w), SegmentFunnel(w)}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
