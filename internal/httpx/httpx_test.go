package httpx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
)

func TestPostJSONRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			t.Errorf("method = %s, want POST", r.Method)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		var in struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			t.Errorf("decode: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"n":%d}`, in.N+1)
	}))
	defer ts.Close()

	var out struct {
		N int `json:"n"`
	}
	err := PostJSON(context.Background(), ts.Client(), ts.URL, map[string]int{"n": 41}, &out, time.Second, 1<<16)
	if err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out.N != 42 {
		t.Fatalf("out.N = %d, want 42", out.N)
	}
}

func TestStatusError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusConflict)
	}))
	defer ts.Close()

	err := GetJSON(context.Background(), ts.Client(), ts.URL, nil, time.Second, 1<<16)
	if err == nil {
		t.Fatal("want error on 409")
	}
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("IsStatus(409) = false for %v", err)
	}
	if IsStatus(err, http.StatusNotFound) {
		t.Fatal("IsStatus(404) matched a 409")
	}
	se, ok := Status(err)
	if !ok || se.Code != http.StatusConflict || se.Body != "nope" {
		t.Fatalf("Status = %+v, %v", se, ok)
	}
}

func TestGetJSONTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	start := time.Now()
	err := GetJSON(context.Background(), ts.Client(), ts.URL, nil, 30*time.Millisecond, 1<<16)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	var calls atomic.Int64
	var observed []int
	err := Retry(context.Background(), backoff.Policy{Base: time.Millisecond, Cap: 2 * time.Millisecond},
		func() error {
			if calls.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
		func(attempt int, _ time.Duration, err error) {
			observed = append(observed, attempt)
			if err == nil {
				t.Error("onErr called with nil error")
			}
		})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Fatalf("observed attempts = %v, want [1 2]", observed)
	}
}

func TestRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, backoff.Policy{Base: 5 * time.Millisecond, Cap: 5 * time.Millisecond},
		func() error { calls.Add(1); return errors.New("always") }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if calls.Load() == 0 {
		t.Fatal("fn never ran")
	}
}
