// Package httpx is the repo's one hand-rolled HTTP/JSON client: timeout-
// bounded JSON round trips with limited response reads, non-2xx-to-error
// decoding, and a retry-with-backoff driver. The replication shipper
// (internal/replica) and the cluster coordinator (internal/distrib) both
// speak JSON over HTTP with exactly these needs — timeouts on every leg,
// bounded reads so a confused peer cannot balloon memory, and typed
// status errors the caller can branch on — so the vocabulary lives here
// once instead of twice.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/backoff"
)

// StatusError is a non-2xx response: the request URL, the status code,
// and the (read-limited, trimmed) response body for diagnostics.
type StatusError struct {
	URL  string
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s answered %d: %s", e.URL, e.Code, e.Body)
}

// IsStatus reports whether err carries a StatusError with the given
// status code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// Status returns err's StatusError, if any.
func Status(err error) (*StatusError, bool) {
	var se *StatusError
	ok := errors.As(err, &se)
	return se, ok
}

// NewClient builds an http.Client with a bounded dial timeout and a
// small per-host idle pool — the shape every internal client (WAL
// shipping, standby registration, coordinator scatter) wants. Request
// deadlines are per call (PostJSON/GetJSON), not on the client.
func NewClient(connectTimeout time.Duration) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:         (&net.Dialer{Timeout: connectTimeout}).DialContext,
		MaxIdleConnsPerHost: 4,
	}}
}

// PostJSON marshals in, POSTs it to url under timeout (0 = ctx only),
// reads at most maxBody response bytes, and unmarshals a 2xx body into
// out (nil out discards it). A non-2xx response returns a *StatusError;
// a torn response body returns the read error — the caller decides
// whether the request is safe to retry.
func PostJSON(ctx context.Context, client *http.Client, url string, in, out any, timeout time.Duration, maxBody int64) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return roundTrip(ctx, client, http.MethodPost, url, body, out, timeout, maxBody)
}

// GetJSON GETs url under timeout and unmarshals a 2xx body into out,
// with the same error contract as PostJSON.
func GetJSON(ctx context.Context, client *http.Client, url string, out any, timeout time.Duration, maxBody int64) error {
	return roundTrip(ctx, client, http.MethodGet, url, nil, out, timeout, maxBody)
}

func roundTrip(ctx context.Context, client *http.Client, method, url string, body []byte, out any, timeout time.Duration, maxBody int64) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return fmt.Errorf("reading response from %s: %w", url, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &StatusError{URL: url, Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("bad response from %s: %w", url, err)
	}
	return nil
}

// Retry runs fn until it returns nil or ctx ends, sleeping an
// exponential-backoff delay between attempts. onErr, when non-nil,
// observes every failure with the attempt number (1-based) and the
// delay chosen before the next try — the hook replication uses for
// per-follower retry accounting. Returns nil on success; on
// cancellation, ctx's error (the last fn error is reported to onErr,
// not returned, matching "the caller gave up, not the peer").
func Retry(ctx context.Context, pol backoff.Policy, fn func() error, onErr func(attempt int, delay time.Duration, err error)) error {
	bo := backoff.State{P: pol}
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		d := bo.Next()
		if onErr != nil {
			onErr(bo.Attempt(), d, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}
