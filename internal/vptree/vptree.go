// Package vptree provides a vantage-point tree over any metric space —
// the K-nearest-neighbor substrate the paper motivates: "By proving NSLD
// is a metric, it can be leveraged in all flavors of K-nearest-neighbor
// queries on metric spaces" (Sec. II-D).
//
// The tree supports exact range queries and exact k-NN queries for any
// distance satisfying the metric axioms; correctness relies on the
// triangle inequality (Theorem 2 for NSLD).
package vptree

import (
	"container/heap"
	"math/rand"
	"sort"
)

// Metric is a distance function satisfying the metric axioms.
type Metric[T any] func(a, b T) float64

// Tree is an immutable vantage-point tree.
type Tree[T any] struct {
	items []T
	d     Metric[T]
	root  *node
}

type node struct {
	idx     int     // vantage point (index into items)
	radius  float64 // median distance splitting inside/outside
	inside  *node   // d(x, vp) <= radius
	outside *node   // d(x, vp) > radius
}

// New builds a tree over items with the given metric. Construction is
// deterministic for a given seed: vantage points are chosen by seeded
// random sampling (a common, robust strategy).
func New[T any](items []T, d Metric[T], seed int64) *Tree[T] {
	t := &Tree[T]{items: items, d: d}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idx, rng)
	return t
}

func (t *Tree[T]) build(idx []int, rng *rand.Rand) *node {
	if len(idx) == 0 {
		return nil
	}
	if len(idx) == 1 {
		return &node{idx: idx[0], radius: 0}
	}
	// Pick a vantage point and move it out of the working set.
	vi := rng.Intn(len(idx))
	idx[0], idx[vi] = idx[vi], idx[0]
	vp := idx[0]
	rest := idx[1:]

	// Distances to the vantage point; split at the median.
	type distIdx struct {
		d float64
		i int
	}
	dists := make([]distIdx, len(rest))
	for k, i := range rest {
		dists[k] = distIdx{t.d(t.items[vp], t.items[i]), i}
	}
	sort.Slice(dists, func(a, b int) bool {
		if dists[a].d != dists[b].d {
			return dists[a].d < dists[b].d
		}
		return dists[a].i < dists[b].i
	})
	mid := len(dists) / 2
	radius := dists[mid].d
	// inside: strictly the first half by sorted order (d <= radius).
	insideIdx := make([]int, 0, mid+1)
	outsideIdx := make([]int, 0, len(dists)-mid)
	for _, di := range dists {
		if di.d <= radius && len(insideIdx) <= mid {
			insideIdx = append(insideIdx, di.i)
		} else {
			outsideIdx = append(outsideIdx, di.i)
		}
	}
	n := &node{idx: vp, radius: radius}
	n.inside = t.build(insideIdx, rng)
	n.outside = t.build(outsideIdx, rng)
	return n
}

// Within returns the indices of all items with d(query, item) <= r,
// sorted by distance then index, along with the distances.
func (t *Tree[T]) Within(query T, r float64) (idx []int, dists []float64) {
	type hit struct {
		i int
		d float64
	}
	var hits []hit
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		dv := t.d(query, t.items[n.idx])
		if dv <= r {
			hits = append(hits, hit{n.idx, dv})
		}
		// Triangle-inequality pruning: the inside ball can contain a hit
		// only if dv - radius <= r; the outside region only if
		// radius - dv <= r.
		if dv-n.radius <= r {
			walk(n.inside)
		}
		if n.radius-dv <= r {
			walk(n.outside)
		}
	}
	walk(t.root)
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].d != hits[b].d {
			return hits[a].d < hits[b].d
		}
		return hits[a].i < hits[b].i
	})
	idx = make([]int, len(hits))
	dists = make([]float64, len(hits))
	for k, h := range hits {
		idx[k] = h.i
		dists[k] = h.d
	}
	return idx, dists
}

// maxHeap of (dist, idx) for k-NN.
type knnHeap []struct {
	d float64
	i int
}

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(a, b int) bool {
	if h[a].d != h[b].d {
		return h[a].d > h[b].d // max-heap on distance
	}
	return h[a].i > h[b].i
}
func (h knnHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *knnHeap) Push(x interface{}) {
	*h = append(*h, x.(struct {
		d float64
		i int
	}))
}
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Nearest returns the k nearest items to query (ties broken by index),
// sorted by distance.
func (t *Tree[T]) Nearest(query T, k int) (idx []int, dists []float64) {
	if k <= 0 || t.root == nil {
		return nil, nil
	}
	h := &knnHeap{}
	tau := func() float64 {
		if h.Len() < k {
			return 1e308
		}
		return (*h)[0].d
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		dv := t.d(query, t.items[n.idx])
		if h.Len() < k || dv < tau() {
			heap.Push(h, struct {
				d float64
				i int
			}{dv, n.idx})
			if h.Len() > k {
				heap.Pop(h)
			}
		}
		// Query ball B(query, tau) intersects the inside region iff
		// dv - tau <= radius, and the outside region iff
		// dv + tau >= radius (triangle inequality both ways). Search the
		// nearer side first so tau tightens before the far side is
		// examined; tau is re-read between branches.
		if dv <= n.radius {
			if dv-tau() <= n.radius {
				walk(n.inside)
			}
			if dv+tau() >= n.radius {
				walk(n.outside)
			}
		} else {
			if dv+tau() >= n.radius {
				walk(n.outside)
			}
			if dv-tau() <= n.radius {
				walk(n.inside)
			}
		}
	}
	walk(t.root)
	out := make([]struct {
		d float64
		i int
	}, h.Len())
	for k := len(out) - 1; k >= 0; k-- {
		out[k] = heap.Pop(h).(struct {
			d float64
			i int
		})
	}
	idx = make([]int, len(out))
	dists = make([]float64, len(out))
	for k2, o := range out {
		idx[k2] = o.i
		dists[k2] = o.d
	}
	return idx, dists
}

// Len returns the number of indexed items.
func (t *Tree[T]) Len() int { return len(t.items) }
