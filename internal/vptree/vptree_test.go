package vptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

func absMetric(a, b float64) float64 { return math.Abs(a - b) }

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for iter := 0; iter < 10; iter++ {
		items := make([]float64, 400)
		for i := range items {
			items[i] = rng.Float64() * 100
		}
		tree := New(items, absMetric, int64(iter))
		for q := 0; q < 20; q++ {
			query := rng.Float64() * 100
			r := rng.Float64() * 5
			gotIdx, gotD := tree.Within(query, r)
			var want []int
			for i, v := range items {
				if absMetric(query, v) <= r {
					want = append(want, i)
				}
			}
			if len(gotIdx) != len(want) {
				t.Fatalf("Within: got %d, want %d", len(gotIdx), len(want))
			}
			wantSet := make(map[int]bool)
			for _, i := range want {
				wantSet[i] = true
			}
			for k, i := range gotIdx {
				if !wantSet[i] {
					t.Fatalf("extra result %d", i)
				}
				if k > 0 && gotD[k] < gotD[k-1] {
					t.Fatal("results not sorted by distance")
				}
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for iter := 0; iter < 10; iter++ {
		items := make([]float64, 300)
		for i := range items {
			items[i] = rng.Float64() * 100
		}
		tree := New(items, absMetric, int64(iter))
		for q := 0; q < 20; q++ {
			query := rng.Float64() * 100
			k := 1 + rng.Intn(10)
			gotIdx, gotD := tree.Nearest(query, k)
			if len(gotIdx) != k {
				t.Fatalf("Nearest returned %d, want %d", len(gotIdx), k)
			}
			// Brute-force k-th smallest distance.
			all := make([]float64, len(items))
			for i, v := range items {
				all[i] = absMetric(query, v)
			}
			sort.Float64s(all)
			for j := 0; j < k; j++ {
				if math.Abs(gotD[j]-all[j]) > 1e-12 {
					t.Fatalf("kNN distance %d: got %v, want %v", j, gotD[j], all[j])
				}
			}
		}
	}
}

func TestNearestWithNSLD(t *testing.T) {
	raw := []string{
		"barak obama", "barack obama", "barak h obama", "john smith",
		"jon smith", "mary huang", "marie huang", "wei chen",
	}
	strs := make([]token.TokenizedString, len(raw))
	for i, s := range raw {
		strs[i] = token.WhitespaceAndPunct(s)
	}
	metric := func(a, b token.TokenizedString) float64 { return core.NSLD(a, b) }
	tree := New(strs, metric, 1)
	query := token.WhitespaceAndPunct("barak obama")
	idx, dists := tree.Nearest(query, 3)
	if idx[0] != 0 || dists[0] != 0 {
		t.Fatalf("nearest to exact match must be itself: %v %v", idx, dists)
	}
	// The two other obama variants must be the next neighbors.
	rest := map[int]bool{idx[1]: true, idx[2]: true}
	if !rest[1] || !rest[2] {
		t.Fatalf("expected obama variants as 2-NN/3-NN, got %v", idx)
	}
	// Range query at the paper's default threshold.
	within, _ := tree.Within(query, 0.1)
	for _, i := range within {
		if core.NSLD(query, strs[i]) > 0.1 {
			t.Fatalf("Within returned far item %d", i)
		}
	}
	if len(within) < 2 {
		t.Fatalf("expected at least the identical and 1-edit variants, got %v", within)
	}
}

func TestEdgeCases(t *testing.T) {
	empty := New(nil, absMetric, 1)
	if idx, _ := empty.Nearest(1, 3); len(idx) != 0 {
		t.Fatal("empty tree must return nothing")
	}
	if idx, _ := empty.Within(1, 3); len(idx) != 0 {
		t.Fatal("empty tree must return nothing")
	}
	single := New([]float64{5}, absMetric, 1)
	idx, d := single.Nearest(5.1, 4)
	if len(idx) != 1 || idx[0] != 0 || math.Abs(d[0]-0.1) > 1e-12 {
		t.Fatalf("single-item tree: %v %v", idx, d)
	}
	if idx, _ := single.Nearest(5, 0); len(idx) != 0 {
		t.Fatal("k=0 must return nothing")
	}
}

func TestDuplicateItems(t *testing.T) {
	items := []float64{3, 3, 3, 3, 7}
	tree := New(items, absMetric, 2)
	idx, _ := tree.Within(3, 0)
	if len(idx) != 4 {
		t.Fatalf("duplicates: got %d hits, want 4", len(idx))
	}
	nIdx, nD := tree.Nearest(3, 5)
	if len(nIdx) != 5 || nD[4] != 4 {
		t.Fatalf("kNN over duplicates: %v %v", nIdx, nD)
	}
}
