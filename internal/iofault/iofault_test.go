package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassthrough: the OS implementation behaves like the os package
// for the full File/FS surface the corpus uses.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("J"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Jello" {
		t.Fatalf("content = %q", got)
	}
	if err := OS.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f2" {
		t.Fatalf("ReadDir: %v, %v", ents, err)
	}
	if err := OS.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorCountsAndDisarmed: a disarmed injector counts ops without
// disturbing anything.
func TestInjectorCountsAndDisarmed(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Disarmed())
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := in.Ops(); got != 5 { // open, write, sync, truncate, dirsync
		t.Fatalf("Ops = %d, want 5", got)
	}
	if in.Faults() != 0 {
		t.Fatalf("Faults = %d on a disarmed injector", in.Faults())
	}
}

// TestInjectorFailAt: the Nth op fails with the chosen errno, earlier
// and later ops succeed (one-shot).
func TestInjectorFailAt(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Plan{FailAt: 1, Err: syscall.ENOSPC}) // ops: open(0), write(1), ...
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write at fault index: err = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("write after one-shot fault: %v", err)
	}
	if in.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", in.Faults())
	}
	f.Close()
}

// TestInjectorShortWrite: the failing write leaves exactly ShortWrite
// bytes behind — a torn write.
func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	in := NewInjector(OS, Plan{FailAt: 1, ShortWrite: 2})
	f, err := in.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "ab" {
		t.Fatalf("on-disk after short write = %q, want \"ab\"", got)
	}
}

// TestInjectorOnlyFilter: with Only set, non-matching ops pass through
// uncounted toward FailAt.
func TestInjectorOnlyFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Plan{FailAt: 0, Only: OpSync})
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err) // open is not eligible
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err) // write is not eligible
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first sync: err = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync after one-shot: %v", err)
	}
	f.Close()
}

// TestInjectorCrash: from the crash point on, every operation fails with
// ErrCrashed and nothing reaches the disk.
func TestInjectorCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	in := NewInjector(OS, Plan{FailAt: 2, Crash: true}) // open(0), write(1), write(2)=crash
	f, err := in.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("def")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash op: err = %v", err)
	}
	if _, err := f.Write([]byte("ghi")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: err = %v", err)
	}
	if err := in.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: err = %v", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() = false after crash fired")
	}
	f.Close() // must still release the descriptor
	got, _ := os.ReadFile(path)
	if string(got) != "abc" {
		t.Fatalf("on-disk after crash = %q, want everything before the crash point only", got)
	}
	if _, err := os.Stat(path + "2"); err == nil {
		t.Fatal("post-crash rename reached the disk")
	}
}

// TestInjectorSetPlanRearms: SetPlan restarts the eligible counter so a
// new fault can be aimed at "the next op of kind K from now".
func TestInjectorSetPlanRearms(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Disarmed())
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	in.SetPlan(Plan{FailAt: 0, Only: OpSync})
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("re-armed sync: err = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("after one-shot: %v", err)
	}
	f.Close()
}
