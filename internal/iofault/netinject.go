package iofault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// The network flavor of the injector: where Injector sits under the
// durability layer's filesystem calls, NetInjector sits under the
// replication layer's HTTP round trips (it is an http.RoundTripper
// wrapping any other). The unit of fault injection is the round trip —
// one shipped frame batch, registration, or heartbeat — counted in
// order, so a torture sweep can fail every round trip of a reference
// run in turn, exactly like the storage sweep fails every file op.
//
// The fault flavors model the distinct failure points of one request:
//
//   - NetDrop: the connection dies before the request reaches the peer.
//     No side effect happened; a retry is trivially safe.
//   - NetTorn: the peer processed the request but the response is cut
//     mid-body. The side effect HAPPENED and the ack was lost — the
//     retry-duplicate case gap detection must absorb.
//   - NetDelay: the peer processed the request but the response stalls
//     past the client's deadline. Same lost-ack semantics as NetTorn,
//     reached through the timeout path instead of a read error.
//   - NetCrash: the peer is gone — this and every later round trip
//     fails until SetPlan re-arms (the "restart"). OnFault lets the
//     harness couple the crash to the peer's state (e.g. arm a disk
//     crash in the peer's Injector so it dies mid-apply).

// NetFaultKind selects the network fault flavor.
type NetFaultKind int

const (
	NetNone NetFaultKind = iota
	NetDrop
	NetTorn
	NetDelay
	NetCrash
)

func (k NetFaultKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetTorn:
		return "torn"
	case NetDelay:
		return "delay"
	case NetCrash:
		return "crash"
	default:
		return "none"
	}
}

// ErrNetFault is the root of every injected network failure;
// errors.Is(err, ErrNetFault) distinguishes injected faults from real
// transport errors in assertions.
var ErrNetFault = errors.New("iofault: injected network fault")

// NetPlan arms one fault: the round trip with zero-based index FailAt
// fails with Kind. FailAt < 0 (see NetDisarmed) counts trips without
// injecting.
type NetPlan struct {
	FailAt int64
	Kind   NetFaultKind
	// Stall is how long a NetDelay response hangs; the client's
	// deadline is expected to expire first.
	Stall time.Duration
	// OnFault runs once, just before the armed fault takes effect —
	// the hook a harness uses to make the fault mean something in the
	// peer (arm its disk injector, swap its handler to "dead").
	OnFault func()
}

// NetDisarmed is the counting-only plan reference runs use.
func NetDisarmed() NetPlan { return NetPlan{FailAt: -1} }

// NetInjector is the fault-injecting RoundTripper. Safe for concurrent
// use; trips are indexed in lock order.
type NetInjector struct {
	rt http.RoundTripper

	mu      sync.Mutex
	plan    NetPlan
	trips   int64
	faults  int64
	crashed bool
}

// NewNetInjector wraps rt (nil means http.DefaultTransport).
func NewNetInjector(rt http.RoundTripper, plan NetPlan) *NetInjector {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &NetInjector{rt: rt, plan: plan}
}

// Trips returns how many round trips were attempted (including faulted
// ones) — the sweep bound of a reference run.
func (n *NetInjector) Trips() int64 { n.mu.Lock(); defer n.mu.Unlock(); return n.trips }

// Faults returns how many faults fired.
func (n *NetInjector) Faults() int64 { n.mu.Lock(); defer n.mu.Unlock(); return n.faults }

// Crashed reports whether a NetCrash fired and the peer has not been
// "restarted" by SetPlan.
func (n *NetInjector) Crashed() bool { n.mu.Lock(); defer n.mu.Unlock(); return n.crashed }

// SetPlan installs a new plan and clears the crashed state (the peer
// restarted). The trip counter keeps running.
func (n *NetInjector) SetPlan(p NetPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.plan = p
	n.crashed = false
}

// RoundTrip implements http.RoundTripper.
func (n *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	n.mu.Lock()
	idx := n.trips
	n.trips++
	if n.crashed {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: peer crashed (trip %d)", ErrNetFault, idx)
	}
	plan := n.plan
	fire := plan.FailAt >= 0 && idx == plan.FailAt && plan.Kind != NetNone
	if fire {
		n.faults++
		if plan.Kind == NetCrash {
			n.crashed = true
		}
	}
	n.mu.Unlock()

	if !fire {
		return n.rt.RoundTrip(req)
	}
	if plan.OnFault != nil {
		plan.OnFault()
	}
	switch plan.Kind {
	case NetDrop, NetCrash:
		// The request never reaches the peer.
		return nil, fmt.Errorf("%w: %s (trip %d)", ErrNetFault, plan.Kind, idx)
	case NetTorn:
		resp, err := n.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The peer processed the request; cut its response mid-body so
		// the caller loses the ack.
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp.Body = &tornBody{data: data[:len(data)/2]}
		return resp, nil
	case NetDelay:
		resp, err := n.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		stall := plan.Stall
		if stall <= 0 {
			stall = time.Second
		}
		select {
		case <-req.Context().Done():
			resp.Body.Close()
			return nil, fmt.Errorf("%w: delayed past deadline (trip %d): %v", ErrNetFault, idx, req.Context().Err())
		case <-time.After(stall):
			// No deadline beat the stall; deliver late.
			return resp, nil
		}
	default:
		return n.rt.RoundTrip(req)
	}
}

// tornBody yields a truncated prefix, then an abrupt connection error.
type tornBody struct {
	data []byte
	off  int
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, fmt.Errorf("%w: response torn mid-body: %v", ErrNetFault, io.ErrUnexpectedEOF)
	}
	k := copy(p, b.data[b.off:])
	b.off += k
	return k, nil
}

func (b *tornBody) Close() error { return nil }
