// Package iofault is the filesystem seam under the durability layer.
//
// Everything the persistent corpus does to disk — WAL appends and
// fsyncs, snapshot temp-write/rename/dir-fsync, generation cleanup —
// runs through the FS interface instead of the os package directly.
// The default implementation (OS) is a zero-cost passthrough; the
// Injector wraps any FS and fails a chosen operation with a chosen
// error, a short write, or a simulated crash, so recovery code can be
// exercised against every fault the real filesystem can produce,
// systematically rather than by hand-crafting corrupt files.
package iofault

import "os"

// File is the subset of *os.File the durability paths use. Reads and
// writes are unbuffered; Sync is a real fsync on the OS implementation.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface of the durability layer: file open and
// creation, the rename that publishes a snapshot, removal of dead
// generations, and the directory fsync that makes renames and creations
// durable. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// CreateTemp is os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Rename is os.Rename (atomic within a directory on POSIX).
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// SyncDir opens dir and fsyncs it, making renames and creations in
	// it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
