package iofault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// netHarness is an httptest server that counts requests it actually
// received, so tests can tell "fault before delivery" from "fault
// after the side effect".
func netHarness(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(`{"ok":true,"padding":"0123456789abcdef"}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &served
}

func get(t *testing.T, client *http.Client, url string) ([]byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestNetDropSkipsDelivery: the dropped trip never reaches the server;
// trips before and after pass.
func TestNetDropSkipsDelivery(t *testing.T) {
	srv, served := netHarness(t)
	inj := NewNetInjector(nil, NetPlan{FailAt: 1, Kind: NetDrop})
	client := &http.Client{Transport: inj}
	if _, err := get(t, client, srv.URL); err != nil {
		t.Fatalf("trip 0: %v", err)
	}
	if _, err := get(t, client, srv.URL); err == nil || !errors.Is(errors.Unwrap(err), ErrNetFault) && !errors.Is(err, ErrNetFault) {
		t.Fatalf("trip 1: err = %v, want ErrNetFault", err)
	}
	if _, err := get(t, client, srv.URL); err != nil {
		t.Fatalf("trip 2: %v", err)
	}
	if got := served.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (drop must not deliver)", got)
	}
	if inj.Trips() != 3 || inj.Faults() != 1 {
		t.Fatalf("trips=%d faults=%d, want 3/1", inj.Trips(), inj.Faults())
	}
}

// TestNetTornDeliversThenCutsAck: the request reaches the server (side
// effect happens) but the response body is cut short.
func TestNetTornDeliversThenCutsAck(t *testing.T) {
	srv, served := netHarness(t)
	inj := NewNetInjector(nil, NetPlan{FailAt: 0, Kind: NetTorn})
	client := &http.Client{Transport: inj}
	_, err := get(t, client, srv.URL)
	if err == nil {
		t.Fatal("torn response read succeeded")
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (torn delivers first)", served.Load())
	}
}

// TestNetDelayLosesAckPastDeadline: the server processes the request
// but the client's deadline expires during the injected stall.
func TestNetDelayLosesAckPastDeadline(t *testing.T) {
	srv, served := netHarness(t)
	inj := NewNetInjector(nil, NetPlan{FailAt: 0, Kind: NetDelay, Stall: 2 * time.Second})
	client := &http.Client{Transport: inj}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("delayed request succeeded before deadline")
	}
	if e := time.Since(start); e >= 2*time.Second {
		t.Fatalf("deadline did not cut the stall short (%v)", e)
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", served.Load())
	}
}

// TestNetCrashStickyUntilSetPlan: after NetCrash every trip fails; a
// SetPlan "restart" heals, and OnFault fired exactly once.
func TestNetCrashStickyUntilSetPlan(t *testing.T) {
	srv, _ := netHarness(t)
	var hooks atomic.Int64
	inj := NewNetInjector(nil, NetPlan{FailAt: 1, Kind: NetCrash, OnFault: func() { hooks.Add(1) }})
	client := &http.Client{Transport: inj}
	if _, err := get(t, client, srv.URL); err != nil {
		t.Fatalf("trip 0: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := get(t, client, srv.URL); err == nil {
			t.Fatalf("trip %d after crash succeeded", i+1)
		}
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() = false after NetCrash")
	}
	if hooks.Load() != 1 {
		t.Fatalf("OnFault ran %d times, want 1", hooks.Load())
	}
	inj.SetPlan(NetDisarmed())
	if inj.Crashed() {
		t.Fatal("Crashed() sticky after SetPlan")
	}
	if _, err := get(t, client, srv.URL); err != nil {
		t.Fatalf("post-restart trip: %v", err)
	}
}
