package iofault

import (
	"errors"
	"os"
	"sync"
	"syscall"
)

// Op classifies the faultable operations the durability layer performs.
// OpAny in Plan.Only means every kind is eligible.
type Op uint8

const (
	OpAny Op = iota
	OpOpen
	OpWrite
	OpSync
	OpRename
	OpTruncate
	OpDirSync
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	case OpDirSync:
		return "dirsync"
	case OpRemove:
		return "remove"
	}
	return "unknown"
}

// ErrCrashed is the error every operation returns once a Crash plan has
// fired: the process conceptually stopped at that instant, so nothing
// after the crash point touches the disk.
var ErrCrashed = errors.New("iofault: simulated crash")

// Plan selects one operation to fail and how. The zero Plan (FailAt 0,
// first eligible op faults with EIO) is rarely what a caller wants;
// Disarmed() or FailAt: -1 makes an Injector a pure op counter.
type Plan struct {
	// FailAt is the 0-based index, over eligible operations, of the
	// operation to fail. Negative disarms injection (the Injector still
	// counts ops).
	FailAt int64
	// Only restricts eligibility to one operation kind; OpAny (the zero
	// value) makes every counted kind eligible.
	Only Op
	// Err is the injected error; nil means syscall.EIO.
	Err error
	// ShortWrite, when the failing operation is a write, writes this many
	// bytes of the buffer through to the underlying file before returning
	// Err — a torn write, as a crashed or full disk produces. Zero fails
	// the write without writing anything.
	ShortWrite int
	// Crash makes the failing operation — and every operation after it —
	// return ErrCrashed with no filesystem effect: the moment of a power
	// cut. Err and ShortWrite are ignored.
	Crash bool
}

// Disarmed is a plan that never fires; the Injector becomes a pure
// operation counter.
func Disarmed() Plan { return Plan{FailAt: -1} }

// Injector wraps an FS and executes a fault Plan against the stream of
// operations flowing through it. Safe for concurrent use.
type Injector struct {
	inner FS

	mu       sync.Mutex
	plan     Plan
	ops      int64 // all counted ops, regardless of eligibility
	eligible int64 // ops matching the plan's Only filter
	faults   int64
	crashed  bool
}

// NewInjector wraps inner with the given plan.
func NewInjector(inner FS, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan}
}

// SetPlan re-arms the injector: the eligible-op counter restarts at
// zero, so Plan{Only: OpSync, FailAt: 0} fails the next fsync from now.
// A crashed injector stays crashed.
func (in *Injector) SetPlan(plan Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = plan
	in.eligible = 0
}

// Ops returns the number of faultable operations seen so far. A
// disarmed run over a deterministic workload yields the sweep bound for
// a torture harness.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Faults returns how many operations were failed by the plan.
func (in *Injector) Faults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// Crashed reports whether a Crash plan has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step counts one operation and decides its fate: err != nil means the
// operation must fail with err, after writing short bytes through (only
// ever non-zero for writes).
func (in *Injector) step(op Op) (short int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.crashed {
		return 0, ErrCrashed
	}
	if in.plan.FailAt < 0 {
		return 0, nil
	}
	if in.plan.Only != OpAny && op != in.plan.Only {
		return 0, nil
	}
	idx := in.eligible
	in.eligible++
	if idx != in.plan.FailAt {
		return 0, nil
	}
	in.faults++
	if in.plan.Crash {
		in.crashed = true
		return 0, ErrCrashed
	}
	err = in.plan.Err
	if err == nil {
		err = syscall.EIO
	}
	if op == OpWrite {
		return in.plan.ShortWrite, err
	}
	return 0, err
}

// gate fails read-side operations after a crash (a dead process reads
// nothing) without counting them as faultable ops.
func (in *Injector) gate() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := in.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if _, err := in.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := in.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.gate(); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err := in.gate(); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.gate(); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.step(OpRename); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if _, err := in.step(OpRemove); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.step(OpDirSync); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// faultFile threads per-file operations back through the injector.
type faultFile struct {
	f  File
	in *Injector
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.in.gate(); err != nil {
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	short, err := ff.in.step(OpWrite)
	if err != nil {
		if short > 0 && short < len(p) {
			n, werr := ff.f.Write(p[:short])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	short, err := ff.in.step(OpWrite)
	if err != nil {
		if short > 0 && short < len(p) {
			n, werr := ff.f.WriteAt(p[:short], off)
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := ff.in.gate(); err != nil {
		return 0, err
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Truncate(size int64) error {
	if _, err := ff.in.step(OpTruncate); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if _, err := ff.in.step(OpSync); err != nil {
		return err
	}
	return ff.f.Sync()
}

// Close always releases the real descriptor — a crashed process's fds
// are closed by the OS too — but reports the crash to the caller.
func (ff *faultFile) Close() error {
	err := ff.in.gate()
	if cerr := ff.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (ff *faultFile) Name() string { return ff.f.Name() }
