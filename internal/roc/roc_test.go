package roc

import (
	"math"
	"math/rand"
	"testing"
)

func TestPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1, 0.0}
	labels := []bool{true, true, true, false, false, false}
	if auc := AUC(scores, labels); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect separation AUC = %v, want 1", auc)
	}
	if tpr := AtFPR(scores, labels, 0); math.Abs(tpr-1) > 1e-12 {
		t.Errorf("TPR@FPR0 = %v, want 1", tpr)
	}
}

func TestInvertedScores(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9}
	labels := []bool{true, true, true, false, false, false}
	if auc := AUC(scores, labels); math.Abs(auc-0) > 1e-12 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestRandomScoresAUCHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 0.02 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCEqualsMannWhitney(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for iter := 0; iter < 20; iter++ {
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // plenty of ties
			labels[i] = rng.Intn(3) == 0
		}
		var pos, neg int
		for _, l := range labels {
			if l {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			continue
		}
		// Mann-Whitney: P(score_pos > score_neg) + 0.5*P(equal).
		var u float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				switch {
				case scores[i] > scores[j]:
					u += 1
				case scores[i] == scores[j]:
					u += 0.5
				}
			}
		}
		want := u / float64(pos*neg)
		if got := AUC(scores, labels); math.Abs(got-want) > 1e-9 {
			t.Fatalf("AUC = %v, Mann-Whitney = %v", got, want)
		}
	}
}

func TestCurveEndpointsAndMonotone(t *testing.T) {
	scores := []float64{0.5, 0.4, 0.4, 0.3, 0.9}
	labels := []bool{true, false, true, false, true}
	pts := Curve(scores, labels)
	if pts[0].FPR != 0 || pts[0].TPR != 0 {
		t.Fatalf("curve must start at origin: %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1): %+v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestDegenerateLabelSets(t *testing.T) {
	if auc := AUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Errorf("all-positive AUC = %v, want degenerate 0.5", auc)
	}
	if auc := AUC(nil, nil); auc != 0.5 {
		t.Errorf("empty AUC = %v, want degenerate 0.5", auc)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Curve([]float64{1}, []bool{true, false})
}
