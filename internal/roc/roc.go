// Package roc computes ROC curves and AUC for scored binary labels — the
// machinery behind Fig. 6, where distances between old and new account
// names are used to predict fraudulent accounts.
//
// The convention follows the paper: larger scores (distances) indicate the
// positive class (fraud), since fraud-driven name changes are drastic
// while legitimate ones are small edits.
package roc

import "sort"

// Point is one ROC operating point.
type Point struct {
	FPR, TPR float64
	// Threshold is the score cutoff producing this point (score >=
	// threshold predicts positive).
	Threshold float64
}

// Curve returns the ROC curve for scores with boolean labels (true =
// positive class), sweeping the decision threshold from +inf down. The
// returned points start at (0,0) and end at (1,1) and are sorted by FPR.
func Curve(scores []float64, labels []bool) []Point {
	if len(scores) != len(labels) {
		panic("roc: scores and labels length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	pts := []Point{{FPR: 0, TPR: 0}}
	if pos == 0 || neg == 0 {
		pts = append(pts, Point{FPR: 1, TPR: 1})
		return pts
	}
	tp, fp := 0, 0
	for i := 0; i < n; {
		// Process ties together: one point per distinct score.
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		pts = append(pts, Point{
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
			Threshold: scores[idx[i]],
		})
		i = j
	}
	return pts
}

// AUC returns the area under the ROC curve via the trapezoidal rule over
// Curve's points; ties are handled correctly (diagonal segments), making
// it equal to the Mann-Whitney U statistic normalized by pos*neg.
func AUC(scores []float64, labels []bool) float64 {
	pts := Curve(scores, labels)
	var area float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		area += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

// AtFPR returns the best TPR achievable at a false-positive rate not
// exceeding maxFPR — useful for the low-FPR operating points abuse
// detection actually runs at.
func AtFPR(scores []float64, labels []bool, maxFPR float64) float64 {
	best := 0.0
	for _, p := range Curve(scores, labels) {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}
