package tsjoin

import (
	"math"

	"repro/internal/token"
	"repro/internal/tsj"
)

// Join performs the bipartite NSLD join of the paper's problem statement
// (Sec. II-B): it returns every pair (A indexes r, B indexes p) with
// NSLD(r[A], p[B]) <= opts.Threshold. Same guarantees as SelfJoin: exact
// under the default fuzzy/Hungarian/unlimited-M configuration, and every
// approximation only loses recall.
func Join(r, p []string, opts Options) ([]Pair, error) {
	pairs, _, err := JoinStats(r, p, opts)
	return pairs, err
}

// JoinStats is Join plus the pipeline statistics.
func JoinStats(r, p []string, opts Options) ([]Pair, *Stats, error) {
	tok := opts.Tokenizer
	if tok == nil {
		tok = token.WhitespaceAndPunct
	}
	combined := make([]string, 0, len(r)+len(p))
	combined = append(combined, r...)
	combined = append(combined, p...)
	c := token.BuildCorpus(combined, tok)
	jopts := tsj.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Matching:                   opts.Matching,
		Aligning:                   opts.Aligning,
		Dedup:                      opts.Dedup,
		MultiMatchAware:            true,
		Parallelism:                opts.Parallelism,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableTokenLDCache:        opts.DisableTokenLDCache,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
	}
	results, st, err := tsj.Join(c, len(r), jopts)
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]Pair, len(results))
	for i, res := range results {
		pairs[i] = Pair{A: int(res.A), B: int(res.B) - len(r), SLD: res.SLD, NSLD: res.NSLD}
	}
	return pairs, st, nil
}

// Similarity conversion schemes λ from Sec. II-B: the join can be
// expressed in terms of similarity by finding all pairs whose similarity
// is at least λ(T).

// SimLinear is λ(T) = 1 - T.
func SimLinear(d float64) float64 { return 1 - d }

// SimReciprocal is λ(T) = 1 / (1 + T).
func SimReciprocal(d float64) float64 { return 1 / (1 + d) }

// SimExponential is λ(T) = e^(-T).
func SimExponential(d float64) float64 { return math.Exp(-d) }
