package tsjoin

// Candidate-generation benchmarks: the prefix filter's effect on the
// batch shared-token generator (candidate count and candidate-generation
// wall time, reported as custom metrics) and on the sharded matcher's
// query path. CI runs these with -benchtime=1x as a smoke test; real
// contrasts come from longer -benchtime runs.

import (
	"sync/atomic"
	"testing"

	"repro/internal/namegen"
	"repro/internal/tsj"
)

// benchmarkCandidates runs the batch self-join at the paper's default
// threshold and reports the raw candidate stream and the wall time of the
// shared-token generation job.
func benchmarkCandidates(b *testing.B, disablePrefix bool) {
	c := benchCorpus(1500)
	opts := tsj.DefaultOptions()
	opts.DisablePrefixFilter = disablePrefix
	b.ReportAllocs()
	b.ResetTimer()
	var cands, prefixPruned, genMs, verifyMs float64
	for i := 0; i < b.N; i++ {
		_, st, err := tsj.SelfJoin(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		cands += float64(st.SharedTokenCandidates + st.SimilarTokenCandidates)
		prefixPruned += float64(st.PrefixPruned)
		// Candidate generation spans the generation jobs plus the dedup
		// shuffle of the fused dedup+verify job; its reduce phase is the
		// filter+verify compute.
		gen := st.Pipeline.WallTimeOf("shared-token") +
			st.Pipeline.WallTimeOf("similar-token") +
			st.Pipeline.MapWallOf("dedup-verify")
		genMs += float64(gen.Microseconds()) / 1000
		verifyMs += float64(st.Pipeline.ReduceWallOf("dedup-verify").Microseconds()) / 1000
	}
	n := float64(b.N)
	b.ReportMetric(cands/n, "candidates/op")
	b.ReportMetric(prefixPruned/n, "prefix-pruned/op")
	b.ReportMetric(genMs/n, "candgen-ms/op")
	b.ReportMetric(verifyMs/n, "verify-ms/op")
}

// BenchmarkCandidatesPrefix measures candidate generation with the
// threshold-aware prefix filter (the default configuration).
func BenchmarkCandidatesPrefix(b *testing.B) { benchmarkCandidates(b, false) }

// BenchmarkCandidatesNoPrefix is the ablation: every kept token feeds the
// posting lists, every co-occurring pair is emitted.
func BenchmarkCandidatesNoPrefix(b *testing.B) { benchmarkCandidates(b, true) }

// BenchmarkShardedQueryPrefix measures concurrent Query throughput on the
// sharded matcher with the prefix filter on (default) and off; the
// prefix-pruned metric shows how many posting entries each configuration
// skipped.
func BenchmarkShardedQueryPrefix(b *testing.B) {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 2000})
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"prefix", false}, {"noprefix", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			m, err := NewConcurrentMatcher(ConcurrentMatcherOptions{
				MatcherOptions: MatcherOptions{Threshold: 0.1, DisablePrefixFilter: cfg.disable},
				Shards:         4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			m.AddAll(names)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % len(names)
					m.Query(names[i])
				}
			})
			b.ReportMetric(float64(m.Stats().PrefixPruned)/float64(b.N), "prefix-pruned/op")
		})
	}
}
