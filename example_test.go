package tsjoin_test

import (
	"fmt"

	tsjoin "repro"
)

// The NSLD distance compares token multisets: order and punctuation are
// irrelevant, small in-token edits cost little.
func ExampleNSLD() {
	fmt.Printf("%.3f\n", tsjoin.NSLD("Barak Obama", "Obama, Barak"))
	fmt.Printf("%.3f\n", tsjoin.NSLD("Barak Obama", "Burak Ubama"))
	fmt.Printf("%.3f\n", tsjoin.NSLD("Barak Obama", "John Smith"))
	// Output:
	// 0.000
	// 0.182
	// 0.690
}

// SelfJoin finds all pairs within an NSLD threshold.
func ExampleSelfJoin() {
	names := []string{"Barak Obama", "Burak Ubama", "John Smith", "Smith, John"}
	pairs, err := tsjoin.SelfJoin(names, tsjoin.Options{Threshold: 0.2})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("%s ~ %s (%.3f)\n", names[p.A], names[p.B], p.NSLD)
	}
	// Output:
	// Barak Obama ~ Burak Ubama (0.182)
	// John Smith ~ Smith, John (0.000)
}

// The incremental Matcher screens arrivals against everything seen so far.
func ExampleMatcher() {
	m, err := tsjoin.NewMatcher(tsjoin.MatcherOptions{Threshold: 0.12})
	if err != nil {
		panic(err)
	}
	m.Add("barak obama")
	for _, hit := range m.Add("barak obamma") {
		fmt.Printf("matched #%d at %.3f\n", hit.ID, hit.NSLD)
	}
	// Output:
	// matched #0 at 0.091
}

// The Index answers exact nearest-neighbor queries because NSLD is a
// metric.
func ExampleIndex() {
	ix := tsjoin.NewIndex([]string{"barak obama", "john smith", "mary huang"})
	for _, n := range ix.Nearest("barak obamma", 1) {
		fmt.Printf("%s (%.3f)\n", n.Name, n.Distance)
	}
	// Output:
	// barak obama (0.091)
}
