package tsjoin

// Verification-engine benchmarks: the bounded, allocation-free verifier
// (core.Verifier) against the exact unbounded path, per-pair and over a
// realistic surviving-candidate workload. Run with
//
//	go test -run '^$' -bench 'SLD|Verify' -benchmem
//
// The bounded verifier must show 0 allocs/op in steady state and lower
// ns/op than the exact path at thresholds <= 0.3.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

// benchVerifyPairs enumerates the candidate pairs of a small corpus that
// survive the Sec. III-E filters at threshold t — exactly the population
// the verify stage sees.
func benchVerifyPairs(n int, t float64) (*token.Corpus, [][2]token.StringID) {
	c := benchCorpus(n)
	var pairs [][2]token.StringID
	for i := 0; i < c.NumStrings(); i++ {
		for j := i + 1; j < c.NumStrings(); j++ {
			x, y := c.Strings[i], c.Strings[j]
			if core.LengthPrune(x.AggregateLen(), y.AggregateLen(), t) {
				continue
			}
			if core.LowerBoundPrune(x, y, t) {
				continue
			}
			pairs = append(pairs, [2]token.StringID{token.StringID(i), token.StringID(j)})
		}
	}
	return c, pairs
}

// BenchmarkVerifyExact is the pre-Verifier path: full cost matrix, full
// Hungarian, threshold applied afterwards. Allocates per pair.
func BenchmarkVerifyExact(b *testing.B) {
	for _, th := range []float64{0.1, 0.3} {
		b.Run(fmt.Sprintf("t=%.1f", th), func(b *testing.B) {
			c, pairs := benchVerifyPairs(300, th)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				x, y := c.Strings[p[0]], c.Strings[p[1]]
				sld := core.SLD(x, y)
				_ = core.WithinNSLD(sld, x.AggregateLen(), y.AggregateLen(), th)
			}
		})
	}
}

// BenchmarkVerifyBounded is the threshold-aware engine with per-worker
// scratch: 0 allocs/op in steady state.
func BenchmarkVerifyBounded(b *testing.B) {
	for _, th := range []float64{0.1, 0.3} {
		b.Run(fmt.Sprintf("t=%.1f", th), func(b *testing.B) {
			c, pairs := benchVerifyPairs(300, th)
			var v core.Verifier
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				v.Verify(c.Strings[p[0]], c.Strings[p[1]], th)
			}
		})
	}
}

// BenchmarkVerifyBoundedCached adds the token-LD memo, warmed by one full
// pass so the timed loop measures the steady state the batch join runs
// in (hot postings re-verifying the same token pairs).
func BenchmarkVerifyBoundedCached(b *testing.B) {
	for _, th := range []float64{0.1, 0.3} {
		b.Run(fmt.Sprintf("t=%.1f", th), func(b *testing.B) {
			c, pairs := benchVerifyPairs(300, th)
			v := core.Verifier{Cache: core.NewTokenLDCache(0)}
			ids := make([][]token.TokenID, c.NumStrings())
			for i, ts := range c.Strings {
				ids[i] = make([]token.TokenID, ts.Count())
				for p, tok := range ts.Tokens {
					id, _ := c.TokenIDOf(tok)
					ids[i][p] = id
				}
			}
			for _, p := range pairs { // warm the memo
				v.VerifyIDs(c.Strings[p[0]], c.Strings[p[1]], ids[p[0]], ids[p[1]], th)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				v.VerifyIDs(c.Strings[p[0]], c.Strings[p[1]], ids[p[0]], ids[p[1]], th)
			}
		})
	}
}

// benchVerifyGroups reshapes the surviving-candidate pairs into the form
// the batched verify path consumes: one probe string against all of its
// surviving partners — exactly what a grouping-on-one-string reducer or
// a stream arrival hands to VerifyBatch.
type benchGroup struct {
	x  token.TokenizedString
	ys []*token.TokenizedString
}

func benchVerifyGroups(n int, t float64) []benchGroup {
	c, pairs := benchVerifyPairs(n, t)
	byProbe := make(map[token.StringID][]*token.TokenizedString)
	for _, p := range pairs {
		byProbe[p[0]] = append(byProbe[p[0]], &c.Strings[p[1]])
	}
	groups := make([]benchGroup, 0, len(byProbe))
	for i := 0; i < c.NumStrings(); i++ { // deterministic order
		if ys := byProbe[token.StringID(i)]; len(ys) > 0 {
			groups = append(groups, benchGroup{x: c.Strings[i], ys: ys})
		}
	}
	return groups
}

// BenchmarkVerifyBatch drives the batched verification engine over the
// probe-grouped surviving-candidate workload, vector kernel on (simd)
// and off (scalar). The two sub-benchmarks verify identical pair
// populations, so their ns/pair metric is directly comparable — the
// kernel's speedup is scalar ns/pair over simd ns/pair. On non-AVX2
// hardware (or -tags nosimd) the simd variant degenerates to scalar.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, th := range []float64{0.1, 0.3} {
		groups := benchVerifyGroups(300, th)
		maxLen := 0
		total := 0
		for _, g := range groups {
			total += len(g.ys)
			if len(g.ys) > maxLen {
				maxLen = len(g.ys)
			}
		}
		for _, mode := range []string{"simd", "scalar"} {
			b.Run(fmt.Sprintf("t=%.1f/%s", th, mode), func(b *testing.B) {
				var v core.Verifier
				v.DisableBatch = mode == "scalar"
				out := make([]core.BatchResult, maxLen)
				b.ReportAllocs()
				b.ResetTimer()
				pairs := 0
				for i := 0; i < b.N; i++ {
					g := groups[i%len(groups)]
					v.VerifyBatch(g.x, g.ys, th, out[:len(g.ys)], nil)
					pairs += len(g.ys)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(pairs), "ns/pair")
			})
		}
	}
}

// BenchmarkSLD is the exact setwise distance on a fixed pair (allocating
// cost matrix + Hungarian per call).
func BenchmarkSLD(b *testing.B) {
	x := Tokenize("barak hussein obama jr")
	y := Tokenize("vladimir vladimirovich putin sr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SLD(x, y)
	}
}

// BenchmarkSLDBounded is the same pair under the budget a T=0.1 join
// would impose: the row-minima bound rejects it long before the
// Hungarian runs, with zero allocations.
func BenchmarkSLDBounded(b *testing.B) {
	x := Tokenize("barak hussein obama jr")
	y := Tokenize("vladimir vladimirovich putin sr")
	max := core.MaxSLDWithin(0.1, x.AggregateLen(), y.AggregateLen())
	var v core.Verifier
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.SLDBounded(x, y, max)
	}
}
