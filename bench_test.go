package tsjoin

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Sec. V) plus ablations for the design choices DESIGN.md calls out.
//
// The figure benchmarks run the corresponding experiment end-to-end on a
// bench-sized workload; `go run ./cmd/tsjexp -fig all` runs them at the
// full default workload and prints the tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hmj"
	"repro/internal/namegen"
	"repro/internal/passjoin"
	"repro/internal/strdist"
	"repro/internal/token"
	"repro/internal/tsj"
)

// benchWorkload keeps each figure iteration in the tens of milliseconds
// so the full bench suite completes quickly on one machine.
func benchWorkload() experiments.Workload {
	return experiments.Workload{Seed: 3, NumNames: 600, HMJNames: 300, NumChanges: 400}
}

// benchCorpus builds the shared corpus for the non-figure benchmarks.
func benchCorpus(n int) *token.Corpus {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: n})
	return token.BuildCorpus(names, token.WhitespaceAndPunct)
}

// --- Figure benchmarks ----------------------------------------------------

// BenchmarkFig1DedupStrategies regenerates Fig. 1: the TSJ machine sweep
// under both candidate de-duplication strategies.
func BenchmarkFig1DedupStrategies(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig1(w)
	}
}

// BenchmarkFig2RuntimeVsThreshold regenerates Fig. 2: runtime across the
// T sweep for fuzzy/greedy/exact matching (shares the sweep with Fig. 4).
func BenchmarkFig2RuntimeVsThreshold(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig2(w)
	}
}

// BenchmarkFig3RuntimeVsMaxFreq regenerates Fig. 3: runtime across the M
// sweep (shares the sweep with Fig. 5).
func BenchmarkFig3RuntimeVsMaxFreq(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig3(w)
	}
}

// BenchmarkFig4RecallVsThreshold regenerates Fig. 4: discovered pairs and
// approximation recall across the T sweep.
func BenchmarkFig4RecallVsThreshold(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4(w)
	}
}

// BenchmarkFig5RecallVsMaxFreq regenerates Fig. 5: discovered pairs and
// approximation recall across the M sweep.
func BenchmarkFig5RecallVsMaxFreq(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig5(w)
	}
}

// BenchmarkFig6ROCMeasures regenerates Fig. 6: ROC/AUC of NSLD vs the
// weighted set-based fuzzy measures on labeled name changes.
func BenchmarkFig6ROCMeasures(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig6(w)
	}
}

// BenchmarkFig7TSJvsHMJ regenerates Fig. 7: TSJ vs the Hybrid Metric
// Joiner across the machine sweep.
func BenchmarkFig7TSJvsHMJ(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig7(w)
	}
}

// --- Core-operation benchmarks ---------------------------------------------

func BenchmarkLevenshtein(b *testing.B) {
	x := []rune("metwally")
	y := []rune("metwalli")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		strdist.LevenshteinRunes(x, y)
	}
}

func BenchmarkNSLDExact(b *testing.B) {
	x := Tokenize("barak hussein obama jr")
	y := Tokenize("obamma boraak h jr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SLD(x, y)
	}
}

func BenchmarkNSLDGreedy(b *testing.B) {
	x := Tokenize("barak hussein obama jr")
	y := Tokenize("obamma boraak h jr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SLDGreedy(x, y)
	}
}

func BenchmarkSelfJoin2k(b *testing.B) {
	c := benchCorpus(2000)
	opts := tsj.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tsj.SelfJoin(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexNearest(b *testing.B) {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 3000})
	ix := NewIndex(names)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Nearest(names[i%len(names)], 5)
	}
}

// --- Concurrent streaming benchmarks ---------------------------------------

// benchShardCounts sweeps 1, 4 and NumCPU shards (deduplicated), the
// comparison the serving-layer scaling claim is stated over.
func benchShardCounts() []int {
	var out []int
	for _, n := range []int{1, 4, runtime.NumCPU()} {
		if !slices.Contains(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// BenchmarkShardedAdd streams a namegen corpus through a fresh
// ConcurrentMatcher per iteration; adds/s is the serving-side ingest
// throughput at each shard count.
func BenchmarkShardedAdd(b *testing.B) {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 1500})
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := NewConcurrentMatcher(ConcurrentMatcherOptions{
					MatcherOptions: MatcherOptions{Threshold: 0.15},
					Shards:         shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				m.AddAll(names)
				m.Close()
			}
			b.ReportMetric(float64(len(names)*b.N)/b.Elapsed().Seconds(), "adds/s")
		})
	}
}

// BenchmarkShardedQuery measures concurrent read throughput: the index is
// built once, then parallel clients issue Query against it.
func BenchmarkShardedQuery(b *testing.B) {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 2000})
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m, err := NewConcurrentMatcher(ConcurrentMatcherOptions{
				MatcherOptions: MatcherOptions{Threshold: 0.15},
				Shards:         shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			m.AddAll(names)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % len(names)
					m.Query(names[i])
				}
			})
		})
	}
}

// --- Ablation benchmarks ----------------------------------------------------

// BenchmarkAblationBandedLD contrasts the threshold-banded Levenshtein
// against the full dynamic program on a dissimilar pair, the verification
// fast path.
func BenchmarkAblationBandedLD(b *testing.B) {
	x := []rune("konstantinopolis")
	y := []rune("albuquerqueacres")
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strdist.LevenshteinRunes(x, y)
		}
	})
	b.Run("banded-tau2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strdist.LevenshteinBounded(x, y, 2)
		}
	})
}

// BenchmarkAblationVerify contrasts exact Hungarian verification with the
// greedy-token-aligning approximation over a whole join.
func BenchmarkAblationVerify(b *testing.B) {
	c := benchCorpus(1500)
	for _, cfg := range []struct {
		name string
		al   tsj.Aligning
	}{{"hungarian", tsj.HungarianAligning}, {"greedy", tsj.GreedyAligning}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := tsj.DefaultOptions()
			opts.Aligning = cfg.al
			for i := 0; i < b.N; i++ {
				if _, _, err := tsj.SelfJoin(c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSubstringSelection contrasts Pass-Join's
// multi-match-aware substring window against the naive shift window.
func BenchmarkAblationSubstringSelection(b *testing.B) {
	c := benchCorpus(4000)
	toks := c.TokenRunes
	for _, cfg := range []struct {
		name string
		mm   bool
	}{{"multi-match-aware", true}, {"shift-window", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				passjoin.SelfJoinNLD(toks, 0.15, passjoin.Options{MultiMatchAware: cfg.mm})
			}
		})
	}
}

// BenchmarkAblationLBFilter contrasts the TSJ histogram lower-bound
// filter on and off.
func BenchmarkAblationLBFilter(b *testing.B) {
	c := benchCorpus(1500)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"with-lb-filter", false}, {"without-lb-filter", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := tsj.DefaultOptions()
			opts.DisableLBFilter = cfg.disable
			for i := 0; i < b.N; i++ {
				if _, _, err := tsj.SelfJoin(c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDedup contrasts the in-process cost of the two
// candidate de-duplication strategies (the simulated-cluster contrast is
// Fig. 1).
func BenchmarkAblationDedup(b *testing.B) {
	c := benchCorpus(1500)
	for _, cfg := range []struct {
		name string
		d    tsj.Dedup
	}{{"group-on-one", tsj.GroupOnOneString}, {"group-on-both", tsj.GroupOnBothStrings}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := tsj.DefaultOptions()
			opts.Dedup = cfg.d
			for i := 0; i < b.N; i++ {
				if _, _, err := tsj.SelfJoin(c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHMJBaseline measures the HMJ baseline on its own so
// its in-process cost is visible next to BenchmarkSelfJoin2k.
func BenchmarkAblationHMJBaseline(b *testing.B) {
	c := benchCorpus(1000)
	metric := func(x, y token.TokenizedString) float64 { return core.NSLD(x, y) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmj.SelfJoin(c.Strings, metric, 0.1, hmj.Config{Seed: 1})
	}
}
