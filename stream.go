package tsjoin

import "repro/internal/stream"

// Matcher is an incremental NSLD matcher: strings are added one at a time
// and each Add returns the previously-added strings within the threshold.
// It is the online complement of the batch SelfJoin — the same
// generate-filter-verify structure maintained incrementally — and is
// exact under the default configuration.
//
// Typical use: screening account sign-ups against everything seen so far.
type Matcher struct {
	m *stream.Matcher
}

// MatcherOptions configures an incremental Matcher.
type MatcherOptions struct {
	// Threshold is the NSLD threshold T in [0, 1).
	Threshold float64
	// MaxTokenFreq is M (0 = unlimited); see Options.MaxTokenFreq.
	MaxTokenFreq int
	// Greedy switches verification to greedy-token-aligning (faster,
	// recall may drop, never false positives).
	Greedy bool
	// ExactTokensOnly disables the similar-token candidate path (the
	// exact-token-matching approximation).
	ExactTokensOnly bool
	// DisableBoundedVerification switches off threshold-aware
	// verification (on by default: candidates are verified under the
	// SLD budget the threshold implies and abandoned as soon as any
	// lower bound exceeds it). Matches are identical either way.
	DisableBoundedVerification bool
	// DisableSIMD switches off the vectorized batched verification path
	// (on by default where the kernel is live — see SIMDAvailable: each
	// arrival's filter-surviving candidates verify in lane-width batches).
	// Matches are identical either way.
	DisableSIMD bool
	// DisablePrefixFilter switches off threshold-aware candidate
	// pruning (on by default: the shared-token index is probed only
	// with the arriving string's maxErrors(T, L)+1 rarest tokens, which
	// is lossless). Matches are identical either way.
	DisablePrefixFilter bool
	// DisableSegmentPrefixFilter switches off threshold-aware pruning of
	// the similar-token (segment index) path: on by default, the segment
	// index is probed only with prefix tokens, and — when MaxTokenFreq
	// is unlimited — only prefix tokens are segment-indexed at all.
	// Matches are identical either way.
	DisableSegmentPrefixFilter bool
	// Tokenizer overrides the default whitespace+punctuation tokenizer.
	Tokenizer Tokenizer
}

// Match is one incremental hit: the earlier string's sequence number and
// the verified distances.
type Match = stream.Match

// NewMatcher creates an empty incremental matcher.
func NewMatcher(opts MatcherOptions) (*Matcher, error) {
	m, err := stream.NewMatcher(stream.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Greedy:                     opts.Greedy,
		ExactTokensOnly:            opts.ExactTokensOnly,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
		Tokenizer:                  opts.Tokenizer,
	})
	if err != nil {
		return nil, err
	}
	return &Matcher{m: m}, nil
}

// Add matches s against every previously added string, then indexes s.
// The new string's id is Len()-1 after the call. Matches are sorted by
// id. Not safe for concurrent use; see ConcurrentMatcher.
func (m *Matcher) Add(s string) []Match { return m.m.Add(s) }

// Query matches s against every previously added string without indexing
// it. Not safe for concurrent use; see ConcurrentMatcher.
func (m *Matcher) Query(s string) []Match { return m.m.Query(s) }

// Len returns the number of indexed strings.
func (m *Matcher) Len() int { return m.m.Len() }

// SequentialMatcherStats is a snapshot of a Matcher's verification
// counters.
type SequentialMatcherStats = stream.MatcherStats

// Stats snapshots the matcher's verification counters (candidates
// verified, rejections the threshold-derived SLD budget short-circuited).
func (m *Matcher) Stats() SequentialMatcherStats { return m.m.Stats() }
