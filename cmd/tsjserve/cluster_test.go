package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	tsjoin "repro"
	"repro/internal/backoff"
	"repro/internal/distrib"
	"repro/internal/namegen"
)

// TestClusterE2E is the scale-out drill from ISSUE PR 9: one
// coordinator over two real tsjserve workers (worker 0 with a live
// replication standby), add/query/join traffic checked against a
// single-node reference, then the kill-a-worker sequence — the hedged
// scatter keeps answering through the warm standby, the heartbeat loop
// detects the death and promotes the standby for real (tsjserve POST
// /promote), the partition map is repointed, and post-failover queries
// and writes still match the single node byte for byte.
func TestClusterE2E(t *testing.T) {
	// Two durable workers; worker 0 ships to a warm standby.
	prim0, ts0, kill0 := newReplPrimary(t, t.TempDir())
	stby0, stbyTS, _ := newReplStandby(t, t.TempDir(), ts0.URL)
	_, ts1, _ := newReplPrimary(t, t.TempDir())

	pm := distrib.Map{Shards: []distrib.Shard{
		{Worker: ts0.URL, Standbys: []string{"http://" + stbyTS.Listener.Addr().String()}},
		{Worker: ts1.URL},
	}}
	co := distrib.New(pm, distrib.Options{
		QueryTimeout: 3 * time.Second,
		WriteTimeout: 5 * time.Second,
		Retry:        backoff.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
		Heartbeat:    25 * time.Millisecond,
		FailAfter:    2,
		Logf:         t.Logf,
	})
	cs := httptest.NewServer(co.Handler())
	t.Cleanup(cs.Close)

	// Single-node reference with the workers' matcher options
	// (buildReplServer: threshold 0.2, 2 shards).
	ref, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)

	sameJSON := func(what string, got []byte, want any) {
		t.Helper()
		exp, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got), exp) {
			t.Fatalf("%s diverged from single node:\n  cluster: %s\n  single:  %s", what, bytes.TrimSpace(got), exp)
		}
	}
	postJSON := func(path string, in any) (int, []byte) {
		t.Helper()
		body, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(cs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	all := namegen.Generate(namegen.Config{Seed: 41, NumNames: 48})
	seq, batch, probes := all[:32], all[32:40], all[40:]

	// ---- Adds + one /join batch, checked against the single node ------
	anyMatch := false
	for _, name := range seq {
		code, body := postJSON("/add", map[string]string{"name": name})
		if code != http.StatusOK {
			t.Fatalf("add %q: status %d: %s", name, code, body)
		}
		id, ms := ref.Add(name)
		anyMatch = anyMatch || len(ms) > 0
		sameJSON(fmt.Sprintf("add %q", name), body, struct {
			ID      int         `json:"id"`
			Matches []wireMatch `json:"matches"`
		}{id, toWire(ms)})
	}
	code, body := postJSON("/join", map[string][]string{"names": batch})
	if code != http.StatusOK {
		t.Fatalf("join: status %d: %s", code, body)
	}
	first, mss := ref.AddAll(batch)
	type joinResult struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	var wantResults []joinResult
	for i, ms := range mss {
		anyMatch = anyMatch || len(ms) > 0
		wantResults = append(wantResults, joinResult{ID: first + i, Matches: toWire(ms)})
	}
	sameJSON("join batch", body, struct {
		First   int          `json:"first"`
		Results []joinResult `json:"results"`
	}{first, wantResults})
	if !anyMatch {
		t.Fatal("degenerate workload: no add/join produced matches")
	}

	// ---- Distributed self-join over the real workers ------------------
	// (before any delete, so global ids are exactly slice indices).
	wantPairs, err := tsjoin.SelfJoin(append(append([]string{}, seq...), batch...), tsjoin.Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(wantPairs, func(i, j int) bool {
		if wantPairs[i].A != wantPairs[j].A {
			return wantPairs[i].A < wantPairs[j].A
		}
		return wantPairs[i].B < wantPairs[j].B
	})
	if len(wantPairs) == 0 {
		t.Fatal("degenerate workload: single-node self-join is empty")
	}
	code, body = postJSON("/cluster/selfjoin", map[string]float64{"threshold": 0.2})
	if code != http.StatusOK {
		t.Fatalf("cluster selfjoin: status %d: %s", code, body)
	}
	var gotPairs distrib.PairsResponse
	if err := json.Unmarshal(body, &gotPairs); err != nil {
		t.Fatal(err)
	}
	wirePairs := make([]distrib.Pair, 0, len(wantPairs))
	for _, p := range wantPairs {
		wirePairs = append(wirePairs, distrib.Pair{A: p.A, B: p.B, SLD: p.SLD, NSLD: p.NSLD})
	}
	gp, _ := json.Marshal(gotPairs.Pairs)
	wp, _ := json.Marshal(wirePairs)
	if !bytes.Equal(gp, wp) {
		t.Fatalf("distributed self-join diverged:\n  cluster: %s\n  single:  %s", gp, wp)
	}

	// ---- Delete + queries ---------------------------------------------
	if code, body := postJSON("/delete", map[string]int{"id": 5}); code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, body)
	}
	if err := ref.Delete(5); err != nil {
		t.Fatal(err)
	}
	queryAll := func(stage string) {
		t.Helper()
		got := false
		for _, name := range probes {
			code, body := postJSON("/query", map[string]string{"name": name})
			if code != http.StatusOK {
				t.Fatalf("%s query %q: status %d: %s", stage, name, code, body)
			}
			ms := ref.Query(name)
			got = got || len(ms) > 0
			sameJSON(fmt.Sprintf("%s query %q", stage, name), body, struct {
				Matches []wireMatch `json:"matches"`
			}{toWire(ms)})
		}
		if !got {
			t.Fatalf("%s: no probe matched — equivalence not exercised", stage)
		}
	}
	queryAll("pre-failover")

	// ---- Let the standby catch worker 0's full history ----------------
	deadline := time.Now().Add(10 * time.Second)
	lsn0 := prim0.corpusHandle().LSN()
	for {
		st := getReplication(t, "http://"+stbyTS.Listener.Addr().String())
		if st.Standby != nil && !st.Standby.Syncing && st.Standby.LSN == lsn0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby did not converge: %+v (primary lsn %d)", st.Standby, lsn0)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ---- Kill worker 0: hedged reads continue through the standby -----
	kill0()
	queryAll("post-kill (hedged to warm standby)")

	// ---- Heartbeats detect the death and promote the standby ----------
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	deadline = time.Now().Add(10 * time.Second)
	for co.Status().Shards[0].Failovers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never promoted the standby")
		}
		co.CheckNow(ctx)
		time.Sleep(time.Millisecond)
	}
	st := co.Status()
	sh := st.Shards[0]
	wantWorker := "http://" + stbyTS.Listener.Addr().String()
	if sh.Worker != wantWorker {
		t.Fatalf("partition map not repointed: worker %s, want promoted standby %s", sh.Worker, wantWorker)
	}
	if !sh.Alive || st.Epoch != 1 || len(sh.Standbys) != 1 || sh.Standbys[0] != ts0.URL {
		t.Fatalf("post-failover shard: %+v epoch %d, want alive, epoch 1, old primary demoted", sh, st.Epoch)
	}
	if stby0.roleName() != rolePrimary {
		t.Fatalf("standby role after coordinator promotion: %q, want %q", stby0.roleName(), rolePrimary)
	}

	// ---- The cluster serves full, correct results after failover ------
	queryAll("post-failover")
	for _, name := range []string{probes[0] + " jr", probes[1] + " ii"} {
		code, body := postJSON("/add", map[string]string{"name": name})
		if code != http.StatusOK {
			t.Fatalf("post-failover add %q: status %d: %s", name, code, body)
		}
		id, ms := ref.Add(name)
		sameJSON(fmt.Sprintf("post-failover add %q", name), body, struct {
			ID      int         `json:"id"`
			Matches []wireMatch `json:"matches"`
		}{id, toWire(ms)})
	}

	// ---- Aggregated cluster /stats ------------------------------------
	var cstats distrib.ClusterStats
	getJSON(t, cs.URL+"/stats", &cstats)
	if len(cstats.Workers) != 2 || !cstats.Workers[0].Alive || !cstats.Workers[1].Alive {
		t.Fatalf("cluster stats workers: %+v", cstats.Workers)
	}
	sum := 0
	for _, row := range cstats.Workers {
		if row.Stats != nil {
			sum += row.Stats.Strings
		}
	}
	if cstats.Cluster.Strings != sum || sum == 0 {
		t.Fatalf("aggregated strings %d, per-worker sum %d", cstats.Cluster.Strings, sum)
	}
	if cstats.Epoch != 1 {
		t.Fatalf("cluster stats epoch %d, want 1", cstats.Epoch)
	}
}
