// Command tsjserve serves an incremental NSLD matcher over HTTP/JSON —
// the sign-up-screening scenario as a service. Every request body is
// JSON; matches reference the sequence number (id) the matched string
// received when it was added.
//
// Endpoints:
//
//	POST /add    {"name": "Barak Obama"}
//	             -> {"id": 17, "matches": [{"id": 3, "sld": 1, "nsld": 0.08}]}
//	POST /query  {"name": "Barak Obama"}        match without indexing
//	             -> {"matches": [...]}
//	POST /join   {"names": ["a", "b", ...]}     atomic batch add
//	             -> {"first": 18, "results": [{"id": 18, "matches": [...]}, ...]}
//	GET  /stats  -> {"strings": 19, "shards": 8, "adds": 19, "queries": 7,
//	                 "verified": 12, "budget_pruned": 3, "prefix_pruned": 41,
//	                 "cand_gen_wall_ms": 0.8, "verify_wall_ms": 1.4,
//	                 "tokens_per_shard": [..]}
//	GET  /healthz -> ok
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain before the worker pool is released.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tsjoin "repro"
)

// maxBodyBytes bounds request bodies; a /join batch of ~10k names fits.
const maxBodyBytes = 4 << 20

// server wires a ConcurrentMatcher to the HTTP API.
type server struct {
	m *tsjoin.ConcurrentMatcher
}

// wireMatch is the JSON form of one match.
type wireMatch struct {
	ID   int     `json:"id"`
	SLD  int     `json:"sld"`
	NSLD float64 `json:"nsld"`
}

func toWire(ms []tsjoin.Match) []wireMatch {
	out := make([]wireMatch, len(ms))
	for i, m := range ms {
		out[i] = wireMatch{ID: m.ID, SLD: m.SLD, NSLD: m.NSLD}
	}
	return out
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/add", s.handleAdd)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/join", s.handleJoin)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// decode parses a JSON body into v, enforcing method and size limits.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	id, matches := s.m.Add(req.Name)
	writeJSON(w, struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}{id, toWire(matches)})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, struct {
		Matches []wireMatch `json:"matches"`
	}{toWire(s.m.Query(req.Name))})
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Names []string `json:"names"`
	}
	if !decode(w, r, &req) {
		return
	}
	first, matches := s.m.AddAll(req.Names)
	type result struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	results := make([]result, len(matches))
	for i, ms := range matches {
		results[i] = result{ID: first + i, Matches: toWire(ms)}
	}
	writeJSON(w, struct {
		First   int      `json:"first"`
		Results []result `json:"results"`
	}{first, results})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	writeJSON(w, struct {
		Strings      int   `json:"strings"`
		Shards       int   `json:"shards"`
		Adds         int64 `json:"adds"`
		Queries      int64 `json:"queries"`
		Verified     int64 `json:"verified"`
		BudgetPruned int64 `json:"budget_pruned"`
		PrefixPruned int64 `json:"prefix_pruned"`
		// Wall times are reported in milliseconds so dashboards need no
		// duration parsing.
		CandGenWallMs  float64 `json:"cand_gen_wall_ms"`
		VerifyWallMs   float64 `json:"verify_wall_ms"`
		TokensPerShard []int   `json:"tokens_per_shard"`
	}{st.Strings, st.Shards, st.Adds, st.Queries, st.Verified, st.BudgetPruned, st.PrefixPruned,
		float64(st.CandGenWall.Microseconds()) / 1000, float64(st.VerifyWall.Microseconds()) / 1000,
		st.TokensPerShard})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.1, "NSLD threshold T in [0, 1)")
	maxFreq := flag.Int("maxfreq", 0, "max token frequency M (0 = unlimited)")
	shards := flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
	greedy := flag.Bool("greedy", false, "greedy-token-aligning verification")
	exactTokens := flag.Bool("exact-tokens", false, "exact-token matching only")
	flag.Parse()

	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{
			Threshold:       *threshold,
			MaxTokenFreq:    *maxFreq,
			Greedy:          *greedy,
			ExactTokensOnly: *exactTokens,
		},
		Shards: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           (&server{m: m}).handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (threshold=%g shards=%d)", *addr, *threshold, m.Shards())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
