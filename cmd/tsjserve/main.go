// Command tsjserve serves an incremental NSLD matcher over HTTP/JSON —
// the sign-up-screening scenario as a service. Every request body is
// JSON; matches reference the sequence number (id) the matched string
// received when it was added.
//
// Endpoints:
//
//	POST /add      {"name": "Barak Obama"}
//	               -> {"id": 17, "matches": [{"id": 3, "sld": 1, "nsld": 0.08}]}
//	POST /query    {"name": "Barak Obama"}        match without indexing
//	               -> {"matches": [...]}
//	POST /join     {"names": ["a", "b", ...]}     atomic batch add
//	               -> {"first": 18, "results": [{"id": 18, "matches": [...]}, ...]}
//	POST /delete   {"id": 3}                      tombstone a string
//	               -> {"deleted": 3}
//	POST /snapshot {"compact": true}              checkpoint the corpus (-data only)
//	               -> {"generation": 3, "strings": 1041}
//	GET  /stats    -> matcher funnel/wall counters, per-endpoint latency
//	                  quantiles, and (with -data) corpus/WAL counters
//	GET  /healthz  -> ok
//
// With -data DIR the index is durable: every add is appended to a
// CRC-framed write-ahead log under DIR before it becomes visible, POST
// /snapshot (or -snapshot-every) checkpoints the corpus, and a restart
// warm-loads the whole index from snapshot + WAL replay — same ids, same
// matches — instead of starting empty.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// (including Adds mid-WAL-append) drain, the worker pool is released,
// and finally the corpus WAL is flushed and closed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tsjoin "repro"
	"repro/internal/histo"
)

// maxBodyBytes bounds request bodies; a /join batch of ~10k names fits.
const maxBodyBytes = 4 << 20

// server wires a ConcurrentMatcher (and optionally its backing corpus)
// to the HTTP API.
type server struct {
	m *tsjoin.ConcurrentMatcher
	// c is the persistent corpus backing m, nil when running in-memory.
	c *tsjoin.Corpus
	// lat holds one latency histogram per endpoint, keyed by the
	// endpoint name reported in /stats.
	lat map[string]*histo.Histogram
}

func newServer(m *tsjoin.ConcurrentMatcher, c *tsjoin.Corpus) *server {
	lat := make(map[string]*histo.Histogram)
	for _, name := range endpointNames {
		lat[name] = &histo.Histogram{}
	}
	return &server{m: m, c: c, lat: lat}
}

// endpointNames are the instrumented endpoints, in /stats display order.
var endpointNames = []string{"add", "query", "join", "delete", "snapshot"}

// wireMatch is the JSON form of one match.
type wireMatch struct {
	ID   int     `json:"id"`
	SLD  int     `json:"sld"`
	NSLD float64 `json:"nsld"`
}

func toWire(ms []tsjoin.Match) []wireMatch {
	out := make([]wireMatch, len(ms))
	for i, m := range ms {
		out[i] = wireMatch{ID: m.ID, SLD: m.SLD, NSLD: m.NSLD}
	}
	return out
}

// handler builds the route table. Mutating endpoints are wrapped with
// their latency histogram.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/add", s.timed("add", s.handleAdd))
	mux.HandleFunc("/query", s.timed("query", s.handleQuery))
	mux.HandleFunc("/join", s.timed("join", s.handleJoin))
	mux.HandleFunc("/delete", s.timed("delete", s.handleDelete))
	mux.HandleFunc("/snapshot", s.timed("snapshot", s.handleSnapshot))
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// timed records the handler's wall time into the endpoint's histogram.
func (s *server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.lat[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// decode parses a JSON body into v, enforcing method and size limits.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	id, matches, err := s.m.AddDurable(req.Name)
	if err != nil {
		http.Error(w, "persistence failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}{id, toWire(matches)})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, struct {
		Matches []wireMatch `json:"matches"`
	}{toWire(s.m.Query(req.Name))})
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Names []string `json:"names"`
	}
	if !decode(w, r, &req) {
		return
	}
	first, matches, err := s.m.AddAllDurable(req.Names)
	if err != nil {
		http.Error(w, "persistence failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	type result struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	results := make([]result, len(matches))
	for i, ms := range matches {
		results[i] = result{ID: first + i, Matches: toWire(ms)}
	}
	writeJSON(w, struct {
		First   int      `json:"first"`
		Results []result `json:"results"`
	}{first, results})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID *int `json:"id"`
	}
	if !decode(w, r, &req) {
		return
	}
	if req.ID == nil {
		http.Error(w, "bad request: missing id", http.StatusBadRequest)
		return
	}
	// The matcher's delete keeps the live index and the corpus WAL (when
	// durable) in step. Unknown/double deletes are the caller's fault; a
	// WAL failure is ours.
	if err := s.m.Delete(*req.ID); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tsjoin.ErrNotFound) {
			status = http.StatusBadRequest
		}
		http.Error(w, "delete: "+err.Error(), status)
		return
	}
	writeJSON(w, struct {
		Deleted int `json:"deleted"`
	}{*req.ID})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Compact bool `json:"compact"`
	}
	if !decode(w, r, &req) {
		return
	}
	if s.c == nil {
		http.Error(w, "no -data directory: the index is not persistent", http.StatusConflict)
		return
	}
	var err error
	if req.Compact {
		err = s.c.Compact()
	} else {
		err = s.c.Snapshot()
	}
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	st := s.c.Stats()
	writeJSON(w, struct {
		Generation uint64 `json:"generation"`
		Strings    int    `json:"strings"`
		Compacted  bool   `json:"compacted"`
	}{st.Generation, st.Strings, req.Compact})
}

// wireLatency is the JSON form of one endpoint's latency summary.
type wireLatency struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	lat := make(map[string]wireLatency, len(s.lat))
	for name, h := range s.lat {
		lat[name] = wireLatency{
			Count:  h.Count(),
			P50Ms:  ms(h.Quantile(0.50)),
			P95Ms:  ms(h.Quantile(0.95)),
			P99Ms:  ms(h.Quantile(0.99)),
			MeanMs: ms(h.Mean()),
		}
	}
	var corpusStats *tsjoin.CorpusStats
	if s.c != nil {
		cs := s.c.Stats()
		corpusStats = &cs
	}
	writeJSON(w, struct {
		Strings      int   `json:"strings"`
		Shards       int   `json:"shards"`
		Adds         int64 `json:"adds"`
		Queries      int64 `json:"queries"`
		Verified     int64 `json:"verified"`
		BudgetPruned int64 `json:"budget_pruned"`
		PrefixPruned int64 `json:"prefix_pruned"`
		// Segment-probe funnel: probe tokens skipped by the segment
		// prefix filter, window fingerprint lookups, tokens reaching the
		// token-NLD check, and tokens within the token threshold.
		SegPrefixPruned  int64 `json:"seg_prefix_pruned"`
		SegKeysProbed    int64 `json:"seg_keys_probed"`
		SegTokensChecked int64 `json:"seg_tokens_checked"`
		SegTokensSimilar int64 `json:"seg_tokens_similar"`
		// Batched-verification funnel: pairs through the vector path,
		// kernel invocations, occupied lanes, scalar-fallback cells.
		BatchedPairs     int64 `json:"batched_pairs"`
		SIMDKernels      int64 `json:"simd_kernels"`
		SIMDLanes        int64 `json:"simd_lanes"`
		BatchScalarCells int64 `json:"batch_scalar_cells"`
		// Wall times are reported in milliseconds so dashboards need no
		// duration parsing.
		CandGenWallMs  float64                `json:"cand_gen_wall_ms"`
		VerifyWallMs   float64                `json:"verify_wall_ms"`
		TokensPerShard []int                  `json:"tokens_per_shard"`
		Latency        map[string]wireLatency `json:"latency"`
		Corpus         *tsjoin.CorpusStats    `json:"corpus,omitempty"`
	}{st.Strings, st.Shards, st.Adds, st.Queries, st.Verified, st.BudgetPruned, st.PrefixPruned,
		st.SegPrefixPruned, st.SegKeysProbed, st.SegTokensChecked, st.SegTokensSimilar,
		st.BatchedPairs, st.SIMDKernels, st.SIMDLanes, st.BatchScalarCells,
		ms(st.CandGenWall), ms(st.VerifyWall),
		st.TokensPerShard, lat, corpusStats})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjserve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the full lifecycle so every shutdown path releases resources
// in order (drain HTTP -> close matcher -> flush and close corpus);
// main's log.Fatal never skips a close.
func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.1, "NSLD threshold T in [0, 1)")
	maxFreq := flag.Int("maxfreq", 0, "max token frequency M (0 = unlimited)")
	shards := flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
	greedy := flag.Bool("greedy", false, "greedy-token-aligning verification")
	exactTokens := flag.Bool("exact-tokens", false, "exact-token matching only")
	noSIMD := flag.Bool("nosimd", false, "disable the vectorized batched verification path")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 1, "fsync the WAL every N records (1 = every add durable on return)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "checkpoint the corpus on this interval (0 = manual /snapshot only)")
	flag.Parse()

	mopts := tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{
			Threshold:       *threshold,
			MaxTokenFreq:    *maxFreq,
			Greedy:          *greedy,
			ExactTokensOnly: *exactTokens,
			DisableSIMD:     *noSIMD,
		},
		Shards: *shards,
	}

	var (
		m   *tsjoin.ConcurrentMatcher
		c   *tsjoin.Corpus
		err error
	)
	if *dataDir != "" {
		c, err = tsjoin.OpenCorpus(*dataDir, tsjoin.CorpusOptions{SyncEvery: *syncEvery})
		if err != nil {
			return err
		}
		cs := c.Stats()
		start := time.Now()
		m, err = tsjoin.NewConcurrentMatcherFromCorpus(c, mopts)
		if err != nil {
			c.Close()
			return err
		}
		log.Printf("warm restart from %s: %d strings (%d live, generation %d, %d WAL records replayed) in %v",
			*dataDir, cs.Strings, cs.Live, cs.Generation, cs.WALReplayed, time.Since(start).Round(time.Millisecond))
	} else {
		m, err = tsjoin.NewConcurrentMatcher(mopts)
		if err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(m, c).handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if c != nil && *snapshotEvery > 0 {
		go func() {
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if !c.Stats().Dirty {
						continue // nothing mutated since the last checkpoint
					}
					if err := c.Compact(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("periodic snapshot: generation %d", c.Stats().Generation)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (threshold=%g shards=%d durable=%v simd=%v)",
			*addr, *threshold, m.Shards(), c != nil, tsjoin.SIMDAvailable() && !*noSIMD)
		errc <- srv.ListenAndServe()
	}()

	var serveErr error
	select {
	case serveErr = <-errc:
		// Listener failed: still run the shutdown sequence below so the
		// WAL is flushed and closed.
	case <-ctx.Done():
		log.Print("shutting down")
		// Drain in-flight requests — this is what guarantees no Add is
		// mid-WAL-append when the corpus closes below.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	}
	m.Close()
	if c != nil {
		if err := c.Close(); err != nil {
			log.Printf("corpus close: %v", err)
		} else {
			log.Print("corpus WAL flushed and closed")
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
