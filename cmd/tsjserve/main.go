// Command tsjserve serves an incremental NSLD matcher over HTTP/JSON —
// the sign-up-screening scenario as a service. Every request body is
// JSON; matches reference the sequence number (id) the matched string
// received when it was added.
//
// Endpoints:
//
//	POST /add      {"name": "Barak Obama"}
//	               -> {"id": 17, "matches": [{"id": 3, "sld": 1, "nsld": 0.08}]}
//	POST /query    {"name": "Barak Obama"}        match without indexing
//	               -> {"matches": [...]}
//	POST /join     {"names": ["a", "b", ...]}     atomic batch add
//	               -> {"first": 18, "results": [{"id": 18, "matches": [...]}, ...]}
//	POST /delete   {"id": 3}                      tombstone a string
//	               -> {"deleted": 3}
//	POST /snapshot {"compact": true}              checkpoint the corpus (-data only)
//	               -> {"generation": 3, "strings": 1041}
//	GET  /stats    -> matcher funnel/wall counters, per-endpoint latency
//	                  quantiles and error/shed/panic counters, and (with
//	                  -data) corpus/WAL counters and replication state
//	GET  /healthz  -> ok        pure liveness: 200 while the process serves
//	GET  /readyz   -> ready     flips to 503 while the corpus is degraded
//	                  or the node is a standby that is syncing/out of contact
//	GET  /replication          -> role plus shipper/applier status
//	POST /replication/register   (replication protocol; standby -> primary)
//	POST /replication/apply      (replication protocol; primary -> standby)
//	POST /promote  {}            fail over: seal replication, flip writable
//	               -> {"role": "primary", "lsn": 1041}
//
// With -data DIR the index is durable: every add is appended to a
// CRC-framed write-ahead log under DIR before it becomes visible, POST
// /snapshot (or -snapshot-every) checkpoints the corpus, and a restart
// warm-loads the whole index from snapshot + WAL replay — same ids, same
// matches — instead of starting empty.
//
// Replication: a durable node is always a shipping-capable primary —
// standbys register via POST /replication/register and committed WAL
// records stream to them (far-behind followers get a full bootstrap).
// Started with -replica-of URL (plus -advertise URL and -data DIR), the
// node is instead a warm standby: it applies the primary's shipped
// stream through the same replay path a restart uses, serves /query
// (and all read endpoints) from the warm index, answers 503 on writes,
// and reports not-ready until it is registered and caught up. POST
// /promote fails the node over: the applier is sealed, the corpus
// fsynced, and the node becomes a writable primary that accepts
// follower registrations of its own.
//
// Degraded mode: a storage failure that seals the corpus write path (a
// failed WAL fsync cannot be retried soundly — the kernel may drop the
// dirty pages and report the next fsync clean) flips the server
// read-only. /query and /stats keep serving from memory, mutating
// endpoints return 503 with Retry-After, /readyz reports not-ready, and
// a background loop attempts recovery (a full generation rotation
// through fresh descriptors) with exponential backoff until the
// filesystem heals.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// (including Adds mid-WAL-append) drain, the background snapshot and
// recovery loops are joined, the worker pool is released, and finally
// the corpus WAL is flushed and closed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	tsjoin "repro"
	"repro/internal/backoff"
	"repro/internal/distrib"
	"repro/internal/histo"
	"repro/internal/replica"
)

// maxBodyBytes bounds request bodies; a /join batch of ~10k names fits.
const maxBodyBytes = 4 << 20

// endpointCounters are one instrumented endpoint's error-path tallies.
type endpointCounters struct {
	// errors counts responses with status >= 400 (including sheds and
	// panics); shed counts requests rejected at the concurrency limit;
	// panics counts handler panics converted to 500s.
	errors atomic.Int64
	shed   atomic.Int64
	panics atomic.Int64
}

// Replication roles a node can be in. A durable node starts as a
// primary (shipping-capable, writable), a -replica-of node as a standby
// (read-only applier) until promoted; an in-memory node is "none".
const (
	roleNone    = "none"
	rolePrimary = "primary"
	roleStandby = "standby"
)

// server wires a ConcurrentMatcher (and optionally its backing corpus)
// to the HTTP API.
type server struct {
	// engMu guards the engine handles below. A standby's bootstrap
	// re-seed closes and replaces m and c mid-flight (resetEngine), so
	// every request that touches them runs under the read lock for its
	// whole duration (readLocked) and the swap takes the write lock —
	// the swap drains in-flight requests instead of closing the matcher
	// under them.
	engMu sync.RWMutex
	m     *tsjoin.ConcurrentMatcher
	// c is the persistent corpus backing m, nil when running in-memory.
	c *tsjoin.Corpus
	// lat holds one latency histogram per endpoint, keyed by the
	// endpoint name reported in /stats.
	lat map[string]*histo.Histogram
	ctr map[string]*endpointCounters
	// inflight is the load-shedding semaphore: a request that cannot
	// acquire a slot without blocking is rejected with 503 rather than
	// queued — queueing under overload only converts overload into
	// latency and memory growth.
	inflight chan struct{}

	// role is the replication role (roleNone/rolePrimary/roleStandby);
	// promotion flips it standby -> primary while serving.
	role atomic.Value
	// primMu guards prim, which a promotion creates while serving.
	primMu sync.Mutex
	prim   *replica.Primary
	// stby is non-nil for the life of a node started with -replica-of
	// (it stays, sealed, after promotion — its counters remain visible).
	stby *replica.Standby
	// dataDir plus the open options let resetEngine rebuild the engine
	// from a wiped directory when the primary orders a bootstrap.
	dataDir string
	mopts   tsjoin.ConcurrentMatcherOptions
	copts   tsjoin.CorpusOptions
}

func newServer(m *tsjoin.ConcurrentMatcher, c *tsjoin.Corpus, maxInflight int) *server {
	if maxInflight <= 0 {
		maxInflight = 256
	}
	lat := make(map[string]*histo.Histogram)
	ctr := make(map[string]*endpointCounters)
	for _, name := range endpointNames {
		lat[name] = &histo.Histogram{}
		ctr[name] = &endpointCounters{}
	}
	s := &server{m: m, c: c, lat: lat, ctr: ctr, inflight: make(chan struct{}, maxInflight)}
	if c != nil {
		s.role.Store(rolePrimary)
	} else {
		s.role.Store(roleNone)
	}
	return s
}

// degraded reports the backing corpus's degraded state (nil when
// in-memory or healthy). Callers hold the engine read lock (readLocked).
func (s *server) degraded() error { return s.m.Degraded() }

func (s *server) roleName() string {
	r, _ := s.role.Load().(string)
	return r
}

// shipper returns the primary-side replication shipper, nil on a
// standby (until promoted) or an in-memory node.
func (s *server) shipper() *replica.Primary {
	s.primMu.Lock()
	defer s.primMu.Unlock()
	return s.prim
}

// corpusHandle reads the current corpus under the engine lock; the
// background loops re-read it every tick because a standby bootstrap
// swaps it.
func (s *server) corpusHandle() *tsjoin.Corpus {
	s.engMu.RLock()
	defer s.engMu.RUnlock()
	return s.c
}

// serverEngine adapts the serving matcher+corpus to the replication
// Applier: replicated records install through the same mutation path a
// WAL replay uses, so the standby's matcher answers queries over
// exactly the primary's acknowledged history. Its methods are called
// only under the Standby's own lock, which also serializes them with
// resetEngine's handle swap.
type serverEngine struct{ s *server }

func (e serverEngine) LSN() uint64 {
	if e.s.m == nil {
		return 0
	}
	return e.s.m.LSN()
}

func (e serverEngine) Apply(payload []byte) error {
	if e.s.m == nil {
		return errors.New("engine is resetting")
	}
	return e.s.m.ApplyShipped(payload)
}

func (e serverEngine) Seal() error {
	if e.s.c == nil {
		return errors.New("engine is resetting")
	}
	return e.s.c.Sync()
}

// resetEngine is the standby's bootstrap wipe: close the serving
// handles, clear the data directory, and reopen an empty engine for the
// primary to stream the full state into. Taking the engine write lock
// drains every in-flight read first; while the swap is in progress (or
// after a failed one) the handles are nil and readLocked answers 503.
func (s *server) resetEngine() (replica.Applier, error) {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	if s.m != nil {
		s.m.Close()
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil {
			log.Printf("replica reset: closing old corpus: %v", err)
		}
	}
	s.m, s.c = nil, nil
	if err := os.RemoveAll(s.dataDir); err != nil {
		return nil, fmt.Errorf("replica reset: wiping %s: %w", s.dataDir, err)
	}
	if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
		return nil, err
	}
	c, err := tsjoin.OpenCorpus(s.dataDir, s.copts)
	if err != nil {
		return nil, fmt.Errorf("replica reset: reopening corpus: %w", err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, s.mopts)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("replica reset: rebuilding matcher: %w", err)
	}
	s.m, s.c = m, c
	return serverEngine{s}, nil
}

// closeEngine shuts the current handles down at process exit; it reads
// them under the write lock because a standby may have swapped them
// since startup.
func (s *server) closeEngine() {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	if s.m != nil {
		s.m.Close()
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil {
			log.Printf("corpus close: %v", err)
		} else {
			log.Print("corpus WAL flushed and closed")
		}
	}
	s.m, s.c = nil, nil
}

// endpointNames are the instrumented endpoints, in /stats display order.
var endpointNames = []string{"add", "query", "join", "delete", "snapshot"}

// wireMatch is the JSON form of one match.
type wireMatch struct {
	ID   int     `json:"id"`
	SLD  int     `json:"sld"`
	NSLD float64 `json:"nsld"`
}

func toWire(ms []tsjoin.Match) []wireMatch {
	out := make([]wireMatch, len(ms))
	for i, m := range ms {
		out[i] = wireMatch{ID: m.ID, SLD: m.SLD, NSLD: m.NSLD}
	}
	return out
}

// handler builds the route table. Instrumented endpoints get the full
// request-lifecycle wrapper (shedding, panic recovery, status capture,
// latency); mutating endpoints additionally fail fast while the corpus
// is degraded. /snapshot stays ungated — it IS the manual heal path
// (a successful rotation clears the degraded state).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/add", s.instrument("add", s.readLocked(s.writeGate(s.handleAdd))))
	mux.HandleFunc("/query", s.instrument("query", s.readLocked(s.handleQuery)))
	mux.HandleFunc("/join", s.instrument("join", s.readLocked(s.writeGate(s.handleJoin))))
	mux.HandleFunc("/delete", s.instrument("delete", s.readLocked(s.writeGate(s.handleDelete))))
	mux.HandleFunc("/snapshot", s.instrument("snapshot", s.readLocked(s.handleSnapshot)))
	mux.HandleFunc("/stats", requireGet(s.readLocked(s.handleStats)))
	mux.HandleFunc("/replication", requireGet(s.handleReplication))
	mux.HandleFunc("/replication/register", s.handleRegister)
	mux.HandleFunc("/replication/apply", s.handleApply)
	mux.HandleFunc("/promote", s.handlePromote)
	mux.HandleFunc("/healthz", requireGet(func(w http.ResponseWriter, r *http.Request) {
		// Pure liveness: answers while the process can serve at all, even
		// degraded — orchestrators must not restart a replica that is
		// serving reads and waiting out a disk fault. Readiness (routing)
		// is /readyz.
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/readyz", requireGet(s.readLocked(s.handleReady)))
	// Worker-side cluster endpoints: the executor surface a coordinator
	// (tsjserve -coordinator) drives for the distributed join. They are
	// corpus-backed, so an in-memory node answers 409.
	mux.HandleFunc("/cluster/strings", s.readLocked(s.workerExt(distrib.WorkerExt.ServeStrings)))
	mux.HandleFunc("/cluster/probe", s.readLocked(s.workerExt(distrib.WorkerExt.ServeProbe)))
	mux.HandleFunc("/cluster/selfjoin", s.readLocked(s.workerExt(distrib.WorkerExt.ServeSelfJoin)))
	return mux
}

// workerExt adapts a distrib.WorkerExt method to this server: the
// corpus handle is re-read per request (a standby bootstrap swaps it;
// callers hold the engine read lock via readLocked), and nodes without
// a corpus reject the endpoint.
func (s *server) workerExt(h func(distrib.WorkerExt, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.c == nil {
			http.Error(w, "no -data directory: cluster join endpoints require a corpus", http.StatusConflict)
			return
		}
		h(distrib.WorkerExt{C: s.c}, w, r)
	}
}

// readLocked pins the engine handles for the request's duration: a
// standby bootstrap swaps them under the write lock, so a handler that
// grabbed s.m without this could race the swap's Close. While a swap is
// in progress (or left the handles nil after failing) the request is
// answered 503 — the primary's retry re-orders the reset.
//
// The replication endpoints themselves must NOT run under this lock:
// /replication/apply is the path that takes the write lock.
func (s *server) readLocked(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.engMu.RLock()
		defer s.engMu.RUnlock()
		if s.m == nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "engine resetting: replica re-seed in progress", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// statusWriter captures the response status so the middleware can count
// error responses without inspecting handler internals.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument is the request-lifecycle wrapper: load-shedding semaphore,
// panic-to-500 recovery, status capture for the error counters, and the
// latency histogram.
func (s *server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.lat[name]
	ctr := s.ctr[name]
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			ctr.shed.Add(1)
			ctr.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: concurrency limit reached", http.StatusServiceUnavailable)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				ctr.panics.Add(1)
				ctr.errors.Add(1)
				log.Printf("panic in /%s: %v\n%s", name, p, debug.Stack())
				if sw.status == 0 {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			} else if sw.status >= http.StatusBadRequest {
				ctr.errors.Add(1)
			}
			hist.Observe(time.Since(start))
		}()
		h(sw, r)
	}
}

// writeGate fails mutating requests fast: a standby is read-only by
// role (writes go to the primary; promotion lifts this), and a degraded
// corpus is read-only by circumstance — either way before the request
// touches the write path.
func (s *server) writeGate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.roleName() == roleStandby {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "read-only standby: writes go to the primary (POST /promote to fail over)", http.StatusServiceUnavailable)
			return
		}
		if err := s.degraded(); err != nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "degraded, serving read-only: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// requireGet rejects everything but GET/HEAD on read-only endpoints.
func requireGet(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.roleName() == roleStandby && s.stby != nil && !s.stby.Ready() {
		// A standby is routable only as a warm, caught-up replica:
		// registered with the primary, not mid-bootstrap, in recent
		// contact. Anything else and its answers may be arbitrarily stale.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "standby not ready: syncing or out of contact with the primary", http.StatusServiceUnavailable)
		return
	}
	if err := s.degraded(); err != nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "degraded: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// replStatus is the JSON shape of GET /replication and the replication
// section of /stats: the node's role plus whichever sides it runs.
type replStatus struct {
	Role string `json:"role"`
	// Primary is the shipper's view (followers, lag) on a shipping-
	// capable node; Standby the applier's view on a -replica-of node
	// (it remains, sealed, after promotion so its counters stay
	// visible).
	Primary *replica.PrimaryStatus `json:"primary,omitempty"`
	Standby *replica.StandbyStatus `json:"standby,omitempty"`
}

func (s *server) replicationStatus() replStatus {
	st := replStatus{Role: s.roleName()}
	if p := s.shipper(); p != nil {
		ps := p.Status()
		st.Primary = &ps
	}
	if s.stby != nil {
		ss := s.stby.Status()
		st.Standby = &ss
	}
	return st
}

func (s *server) handleReplication(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.replicationStatus())
}

// handleRegister accepts a standby's "ship to me" handshake; only a
// node currently acting as a primary has a shipper to hand it to.
func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	p := s.shipper()
	if p == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "not accepting followers: node is a standby or in-memory", http.StatusServiceUnavailable)
		return
	}
	p.ServeRegister(w, r)
}

// handleApply ingests one shipped batch on a standby. It runs outside
// readLocked on purpose: a bootstrap chunk's reset takes the engine
// write lock, which drains the readLocked endpoints first.
func (s *server) handleApply(w http.ResponseWriter, r *http.Request) {
	if s.stby == nil {
		http.Error(w, "not a standby: this node does not accept replication traffic", http.StatusConflict)
		return
	}
	s.stby.ServeApply(w, r)
}

// handlePromote fails the node over: seal the applier (rejecting
// further replication traffic, including from a still-live old
// primary), fsync the corpus, and flip the role to writable primary —
// from here the node accepts follower registrations of its own.
// Promotion of a syncing standby is refused: its state is a partial
// bootstrap, not a prefix of the primary's history.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.stby == nil {
		http.Error(w, "not a standby: nothing to promote", http.StatusConflict)
		return
	}
	already := s.roleName() == rolePrimary
	if err := s.stby.Promote(); err != nil {
		if errors.Is(err, replica.ErrSyncing) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "promote: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		// A seal failure (e.g. degraded corpus: the final fsync cannot be
		// trusted) leaves the standby unsealed and promotion retryable.
		persistError(w, "promote", err)
		return
	}
	s.role.Store(rolePrimary)
	s.engMu.RLock()
	c := s.c
	s.engMu.RUnlock()
	s.primMu.Lock()
	if s.prim == nil && c != nil {
		s.prim = replica.NewPrimary(c, replica.PrimaryOptions{Logf: log.Printf})
	}
	s.primMu.Unlock()
	lsn := uint64(0)
	if c != nil {
		lsn = c.LSN()
	}
	if !already {
		log.Printf("promoted: standby sealed at lsn %d, now serving as writable primary", lsn)
	}
	writeJSON(w, struct {
		Role    string `json:"role"`
		LSN     uint64 `json:"lsn"`
		Already bool   `json:"already,omitempty"`
	}{rolePrimary, lsn, already})
}

// decode parses a JSON body into v, enforcing method and size limits.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// persistError maps a persistence failure to its status: degraded-mode
// failures are 503 with Retry-After (the replica heals in place or an
// operator intervenes; the request is safe to retry elsewhere), anything
// else is a 500.
func persistError(w http.ResponseWriter, what string, err error) {
	if errors.Is(err, tsjoin.ErrDegraded) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, what+": "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, what+": "+err.Error(), http.StatusInternalServerError)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	id, matches, err := s.m.AddDurable(req.Name)
	if err != nil {
		persistError(w, "persistence failure", err)
		return
	}
	writeJSON(w, struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}{id, toWire(matches)})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, struct {
		Matches []wireMatch `json:"matches"`
	}{toWire(s.m.Query(req.Name))})
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Names []string `json:"names"`
	}
	if !decode(w, r, &req) {
		return
	}
	first, matches, err := s.m.AddAllDurable(req.Names)
	if err != nil {
		persistError(w, "persistence failure", err)
		return
	}
	type result struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	results := make([]result, len(matches))
	for i, ms := range matches {
		results[i] = result{ID: first + i, Matches: toWire(ms)}
	}
	writeJSON(w, struct {
		First   int      `json:"first"`
		Results []result `json:"results"`
	}{first, results})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID *int `json:"id"`
	}
	if !decode(w, r, &req) {
		return
	}
	if req.ID == nil {
		http.Error(w, "bad request: missing id", http.StatusBadRequest)
		return
	}
	// The matcher's delete keeps the live index and the corpus WAL (when
	// durable) in step. Unknown/double deletes are the caller's fault; a
	// WAL failure is ours.
	if err := s.m.Delete(*req.ID); err != nil {
		if errors.Is(err, tsjoin.ErrNotFound) {
			http.Error(w, "delete: "+err.Error(), http.StatusBadRequest)
			return
		}
		persistError(w, "delete", err)
		return
	}
	writeJSON(w, struct {
		Deleted int `json:"deleted"`
	}{*req.ID})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Compact bool `json:"compact"`
	}
	if !decode(w, r, &req) {
		return
	}
	if s.c == nil {
		http.Error(w, "no -data directory: the index is not persistent", http.StatusConflict)
		return
	}
	var err error
	if req.Compact {
		err = s.c.Compact()
	} else {
		err = s.c.Snapshot()
	}
	if err != nil {
		persistError(w, "snapshot", err)
		return
	}
	st := s.c.Stats()
	writeJSON(w, struct {
		Generation uint64 `json:"generation"`
		Strings    int    `json:"strings"`
		Compacted  bool   `json:"compacted"`
	}{st.Generation, st.Strings, req.Compact})
}

// wireLatency is the JSON form of one endpoint's latency summary.
type wireLatency struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// wireEndpoint is the JSON form of one endpoint's error-path counters.
type wireEndpoint struct {
	Errors int64 `json:"errors"`
	Shed   int64 `json:"shed"`
	Panics int64 `json:"panics"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	lat := make(map[string]wireLatency, len(s.lat))
	for name, h := range s.lat {
		lat[name] = wireLatency{
			Count:  h.Count(),
			P50Ms:  ms(h.Quantile(0.50)),
			P95Ms:  ms(h.Quantile(0.95)),
			P99Ms:  ms(h.Quantile(0.99)),
			MeanMs: ms(h.Mean()),
		}
	}
	endpoints := make(map[string]wireEndpoint, len(s.ctr))
	for name, c := range s.ctr {
		endpoints[name] = wireEndpoint{
			Errors: c.errors.Load(),
			Shed:   c.shed.Load(),
			Panics: c.panics.Load(),
		}
	}
	var degradedCause string
	if err := s.degraded(); err != nil {
		degradedCause = err.Error()
	}
	var corpusStats *tsjoin.CorpusStats
	if s.c != nil {
		cs := s.c.Stats()
		corpusStats = &cs
	}
	var repl *replStatus
	if rs := s.replicationStatus(); rs.Primary != nil || rs.Standby != nil {
		repl = &rs
	}
	// The funnel counters are the embedded distrib.WorkerStats — its json
	// tags are the single source of truth for the field names, so a
	// coordinator aggregating this node's /stats cannot drift from what
	// the node publishes.
	writeJSON(w, struct {
		distrib.WorkerStats
		Latency       map[string]wireLatency  `json:"latency"`
		Endpoints     map[string]wireEndpoint `json:"endpoints"`
		Degraded      bool                    `json:"degraded"`
		DegradedCause string                  `json:"degraded_cause,omitempty"`
		Corpus        *tsjoin.CorpusStats     `json:"corpus,omitempty"`
		Replication   *replStatus             `json:"replication,omitempty"`
	}{distrib.FromShardedStats(s.m.Stats()), lat, endpoints, degradedCause != "", degradedCause, corpusStats, repl})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjserve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the full lifecycle so every shutdown path releases resources
// in order (drain HTTP -> close matcher -> flush and close corpus);
// main's log.Fatal never skips a close.
func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.1, "NSLD threshold T in [0, 1)")
	maxFreq := flag.Int("maxfreq", 0, "max token frequency M (0 = unlimited)")
	shards := flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
	greedy := flag.Bool("greedy", false, "greedy-token-aligning verification")
	exactTokens := flag.Bool("exact-tokens", false, "exact-token matching only")
	noSIMD := flag.Bool("nosimd", false, "disable the vectorized batched verification path")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 1, "fsync the WAL every N records (1 = every add durable on return)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "checkpoint the corpus on this interval (0 = manual /snapshot only)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before load shedding with 503")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "HTTP response write timeout")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	replicaOf := flag.String("replica-of", "", "run as a warm standby replicating from this primary base URL (requires -data and -advertise; read-only until promoted)")
	advertise := flag.String("advertise", "", "base URL the primary should ship to this node at, e.g. http://10.0.0.2:8080 (required with -replica-of)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator over -workers instead of serving an index")
	workersSpec := flag.String("workers", "", "coordinator: comma-separated worker shards, each primary|standby1|standby2...")
	heartbeat := flag.Duration("heartbeat", time.Second, "coordinator: membership probe interval")
	failAfter := flag.Int("fail-after", 3, "coordinator: consecutive missed heartbeats before a standby is promoted")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "coordinator: per-shard scatter deadline")
	flag.Parse()

	if *coordinator {
		if *dataDir != "" || *replicaOf != "" {
			return errors.New("-coordinator does not serve an index: drop -data/-replica-of (workers own the corpora)")
		}
		return runCoordinator(coordinatorConfig{
			addr:         *addr,
			workers:      *workersSpec,
			heartbeat:    *heartbeat,
			failAfter:    *failAfter,
			queryTimeout: *queryTimeout,
			writeTimeout: *writeTimeout,
			idleTimeout:  *idleTimeout,
		})
	}
	if *workersSpec != "" {
		return errors.New("-workers requires -coordinator")
	}

	if *replicaOf != "" {
		if *dataDir == "" {
			return errors.New("-replica-of requires -data: a standby replicates into a durable corpus")
		}
		if *advertise == "" {
			return errors.New("-replica-of requires -advertise: the primary ships to that URL")
		}
	}

	mopts := tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{
			Threshold:       *threshold,
			MaxTokenFreq:    *maxFreq,
			Greedy:          *greedy,
			ExactTokensOnly: *exactTokens,
			DisableSIMD:     *noSIMD,
		},
		Shards: *shards,
	}

	copts := tsjoin.CorpusOptions{SyncEvery: *syncEvery}

	var (
		m   *tsjoin.ConcurrentMatcher
		c   *tsjoin.Corpus
		err error
	)
	if *dataDir != "" {
		c, err = tsjoin.OpenCorpus(*dataDir, copts)
		if err != nil {
			return err
		}
		cs := c.Stats()
		start := time.Now()
		m, err = tsjoin.NewConcurrentMatcherFromCorpus(c, mopts)
		if err != nil {
			c.Close()
			return err
		}
		log.Printf("warm restart from %s: %d strings (%d live, generation %d, %d WAL records replayed) in %v",
			*dataDir, cs.Strings, cs.Live, cs.Generation, cs.WALReplayed, time.Since(start).Round(time.Millisecond))
	} else {
		m, err = tsjoin.NewConcurrentMatcher(mopts)
		if err != nil {
			return err
		}
	}

	s := newServer(m, c, *maxInflight)
	s.dataDir = *dataDir
	s.mopts = mopts
	s.copts = copts
	if *replicaOf != "" {
		s.role.Store(roleStandby)
		s.stby = replica.NewStandby(serverEngine{s}, s.resetEngine, replica.StandbyOptions{
			Primary:   *replicaOf,
			Advertise: *advertise,
			StateDir:  *dataDir,
			Logf:      log.Printf,
		})
		log.Printf("standby: replicating from %s, advertising %s (read-only until POST /promote)", *replicaOf, *advertise)
	} else if c != nil {
		s.prim = replica.NewPrimary(c, replica.PrimaryOptions{Logf: log.Printf})
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background maintenance loops. They touch the corpus, so shutdown
	// must join them (bg.Wait below) before the corpus closes — the old
	// detached-goroutine version could race a periodic Compact against
	// Close. They re-read the corpus handle every tick because a standby
	// bootstrap swaps it.
	var bg sync.WaitGroup
	if c != nil && *snapshotEvery > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			runPeriodicSnapshots(ctx, s, *snapshotEvery)
		}()
	}
	if c != nil {
		bg.Add(1)
		go func() {
			defer bg.Done()
			runRecovery(ctx, s, time.Second)
		}()
	}
	if s.stby != nil {
		// The standby registration watchdog: registers with the primary
		// and re-registers whenever heartbeats stop. Exits on its own
		// once the standby is sealed by promotion.
		bg.Add(1)
		go func() {
			defer bg.Done()
			s.stby.Run(ctx)
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (threshold=%g shards=%d durable=%v simd=%v)",
			*addr, *threshold, m.Shards(), c != nil, tsjoin.SIMDAvailable() && !*noSIMD)
		errc <- srv.ListenAndServe()
	}()

	var serveErr error
	select {
	case serveErr = <-errc:
		// Listener failed: still run the shutdown sequence below so the
		// WAL is flushed and closed.
	case <-ctx.Done():
		log.Print("shutting down")
		// Drain in-flight requests — this is what guarantees no Add is
		// mid-WAL-append when the corpus closes below.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	}
	stop()
	bg.Wait()
	if p := s.shipper(); p != nil {
		// Stop the ship loops before the corpus closes under them.
		p.Close()
	}
	s.closeEngine()
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

// runPeriodicSnapshots checkpoints the corpus on an interval, skipping
// when nothing mutated since the last checkpoint and while the corpus
// is degraded (the recovery loop owns the heal — checkpointing against
// a failing disk would just spin it). Consecutive failures back the
// interval off exponentially (backoff.Policy capped at 64x) so a
// persistently sick filesystem isn't hammered; one success resets the
// cadence. A standby skips checkpointing until promoted: its corpus is
// wiped and re-seeded at the primary's discretion.
func runPeriodicSnapshots(ctx context.Context, s *server, every time.Duration) {
	pol := backoff.Policy{Base: every, Cap: every << 6}
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(pol.Delay(fails)):
		}
		c := s.corpusHandle()
		if c == nil || s.roleName() == roleStandby {
			continue
		}
		if c.Degraded() != nil || !c.Stats().Dirty {
			continue
		}
		if err := c.Compact(); err != nil {
			fails++
			log.Printf("periodic snapshot: %v (next attempt in %v)", err, pol.Delay(fails))
		} else {
			fails = 0
			log.Printf("periodic snapshot: generation %d", c.Stats().Generation)
		}
	}
}

// runRecovery heals a degraded corpus: while the write path is sealed
// it periodically attempts a full generation rotation through fresh
// descriptors (Corpus.Recover), backing off exponentially (backoff.
// Policy capped at 16x base) while the filesystem keeps failing. While
// healthy it idles at the base interval, which costs one read-locked
// nil check. It runs on standbys too — a degraded standby corpus heals
// the same way, and must be healthy before promotion can seal it.
func runRecovery(ctx context.Context, s *server, base time.Duration) {
	pol := backoff.Policy{Base: base, Cap: 16 * base}
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(pol.Delay(fails)):
		}
		c := s.corpusHandle()
		if c == nil || c.Degraded() == nil {
			fails = 0
			continue
		}
		if err := c.Recover(); err != nil {
			fails++
			log.Printf("degraded: recovery failed: %v (next attempt in %v)", err, pol.Delay(fails))
		} else {
			fails = 0
			log.Printf("recovered: write path restored at generation %d", c.Stats().Generation)
		}
	}
}
