package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tsjoin "repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *tsjoin.ConcurrentMatcher) {
	t.Helper()
	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ts := httptest.NewServer(newServer(m, nil).handler())
	t.Cleanup(ts.Close)
	return ts, m
}

// newDurableTestServer builds a server backed by a persistent corpus in
// dir. The returned shutdown runs the graceful sequence (drain, close
// matcher, flush and close the corpus WAL) and is idempotent; it is also
// registered as a cleanup.
func newDurableTestServer(t *testing.T, dir string) (*httptest.Server, *tsjoin.ConcurrentMatcher, *tsjoin.Corpus, func()) {
	t.Helper()
	c, err := tsjoin.OpenCorpus(dir, tsjoin.CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(m, c).handler())
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		m.Close()
		c.Close()
	}
	t.Cleanup(shutdown)
	return ts, m, c, shutdown
}

func post(t *testing.T, url, body string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestServeAddQueryStats(t *testing.T) {
	ts, _ := newTestServer(t)

	var add struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/add", `{"name": "barak obama"}`, &add)
	if add.ID != 0 || len(add.Matches) != 0 {
		t.Fatalf("first add: %+v", add)
	}
	post(t, ts.URL+"/add", `{"name": "barak obamma"}`, &add)
	if add.ID != 1 || len(add.Matches) != 1 || add.Matches[0].ID != 0 {
		t.Fatalf("second add must match the first: %+v", add)
	}

	var query struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/query", `{"name": "barrak obama"}`, &query)
	if len(query.Matches) != 2 {
		t.Fatalf("query must match both variants: %+v", query)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Strings int   `json:"strings"`
		Shards  int   `json:"shards"`
		Adds    int64 `json:"adds"`
		Queries int64 `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Strings != 2 || stats.Shards != 3 || stats.Adds != 2 || stats.Queries != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServeStatsFilterTelemetry: /stats carries the filter-funnel and
// stage-timing fields — verified/budget_pruned/prefix_pruned counters and
// the candidate-generation and verify wall clocks.
func TestServeStatsFilterTelemetry(t *testing.T) {
	ts, _ := newTestServer(t)
	// Enough near-duplicate traffic to exercise generation + verification.
	post(t, ts.URL+"/join",
		`{"names": ["maria del carmen", "maria del karmen", "mario del carmen", "jo ng", "bob"]}`, nil)
	post(t, ts.URL+"/query", `{"name": "maria del carmen"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Verified         int64    `json:"verified"`
		BudgetPruned     *int64   `json:"budget_pruned"`
		PrefixPruned     *int64   `json:"prefix_pruned"`
		SegPrefixPruned  *int64   `json:"seg_prefix_pruned"`
		SegKeysProbed    *int64   `json:"seg_keys_probed"`
		SegTokensChecked *int64   `json:"seg_tokens_checked"`
		SegTokensSimilar *int64   `json:"seg_tokens_similar"`
		BatchedPairs     *int64   `json:"batched_pairs"`
		SIMDKernels      *int64   `json:"simd_kernels"`
		SIMDLanes        *int64   `json:"simd_lanes"`
		BatchScalarCells *int64   `json:"batch_scalar_cells"`
		CandGenWallMs    *float64 `json:"cand_gen_wall_ms"`
		VerifyWallMs     *float64 `json:"verify_wall_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetPruned == nil || stats.PrefixPruned == nil {
		t.Fatal("/stats missing budget_pruned or prefix_pruned")
	}
	if stats.SegPrefixPruned == nil || stats.SegKeysProbed == nil ||
		stats.SegTokensChecked == nil || stats.SegTokensSimilar == nil {
		t.Fatal("/stats missing segment-probe funnel counters")
	}
	if *stats.SegKeysProbed == 0 {
		t.Fatal("seg_keys_probed not populated by the near-duplicate traffic")
	}
	if stats.BatchedPairs == nil || stats.SIMDKernels == nil ||
		stats.SIMDLanes == nil || stats.BatchScalarCells == nil {
		t.Fatal("/stats missing batched-verification counters")
	}
	if tsjoin.SIMDAvailable() && stats.Verified > 0 && *stats.BatchedPairs == 0 {
		t.Fatal("batched_pairs not populated despite a live kernel and verified pairs")
	}
	if stats.CandGenWallMs == nil || stats.VerifyWallMs == nil {
		t.Fatal("/stats missing cand_gen_wall_ms or verify_wall_ms")
	}
	if stats.Verified == 0 {
		t.Fatal("verified count not populated by the join traffic")
	}
	if *stats.CandGenWallMs <= 0 {
		t.Fatalf("cand_gen_wall_ms = %v, want > 0 after traffic", *stats.CandGenWallMs)
	}
	if *stats.VerifyWallMs <= 0 {
		t.Fatalf("verify_wall_ms = %v, want > 0 after traffic", *stats.VerifyWallMs)
	}
}

func TestServeJoinBatch(t *testing.T) {
	ts, m := newTestServer(t)
	var join struct {
		First   int `json:"first"`
		Results []struct {
			ID      int         `json:"id"`
			Matches []wireMatch `json:"matches"`
		} `json:"results"`
	}
	post(t, ts.URL+"/join", `{"names": ["john smith", "jon smith", "ann lee"]}`, &join)
	if join.First != 0 || len(join.Results) != 3 {
		t.Fatalf("join: %+v", join)
	}
	if got := join.Results[1]; got.ID != 1 || len(got.Matches) != 1 || got.Matches[0].ID != 0 {
		t.Fatalf("batch element must match earlier batch element: %+v", got)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d after join", m.Len())
	}
}

// TestServeDelete: /delete tombstones a string live; bad ids are 400s.
func TestServeDelete(t *testing.T) {
	ts, m := newTestServer(t)
	post(t, ts.URL+"/join", `{"names": ["john smith", "jon smith"]}`, nil)
	var del struct {
		Deleted int `json:"deleted"`
	}
	if resp := post(t, ts.URL+"/delete", `{"id": 0}`, &del); resp.StatusCode != http.StatusOK || del.Deleted != 0 {
		t.Fatalf("/delete: status %d, body %+v", resp.StatusCode, del)
	}
	if got := m.Query("jon smith"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("deleted string still matching: %v", got)
	}
	if resp := post(t, ts.URL+"/delete", `{"id": 0}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/delete", `{}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing id: status %d", resp.StatusCode)
	}
}

// TestServeLatencyHistograms: /stats carries per-endpoint p50/p95/p99
// latency summaries populated by traffic.
func TestServeLatencyHistograms(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/add", `{"name": "maria del carmen"}`, nil)
	post(t, ts.URL+"/add", `{"name": "maria del karmen"}`, nil)
	post(t, ts.URL+"/query", `{"name": "mario del carmen"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Latency map[string]struct {
			Count  int64    `json:"count"`
			P50Ms  *float64 `json:"p50_ms"`
			P95Ms  *float64 `json:"p95_ms"`
			P99Ms  *float64 `json:"p99_ms"`
			MeanMs *float64 `json:"mean_ms"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"add", "query", "join", "delete", "snapshot"} {
		if _, ok := stats.Latency[ep]; !ok {
			t.Fatalf("/stats latency missing endpoint %q", ep)
		}
	}
	add := stats.Latency["add"]
	if add.Count != 2 {
		t.Fatalf("add latency count = %d, want 2", add.Count)
	}
	if add.P50Ms == nil || add.P95Ms == nil || add.P99Ms == nil || add.MeanMs == nil {
		t.Fatal("latency quantile fields missing")
	}
	if *add.P99Ms < *add.P50Ms {
		t.Fatalf("p99 (%v) below p50 (%v)", *add.P99Ms, *add.P50Ms)
	}
	if *add.MeanMs <= 0 {
		t.Fatalf("mean_ms = %v, want > 0 after traffic", *add.MeanMs)
	}
	if stats.Latency["query"].Count != 1 || stats.Latency["join"].Count != 0 {
		t.Fatalf("per-endpoint counts wrong: %+v", stats.Latency)
	}
}

// TestServeSnapshotRequiresData: without -data, /snapshot is a 409.
func TestServeSnapshotRequiresData(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp := post(t, ts.URL+"/snapshot", `{}`, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("/snapshot without a corpus: status %d, want 409", resp.StatusCode)
	}
}

// TestServeDurableWarmRestart is the serving-layer acceptance test:
// populate a -data server, snapshot over HTTP, keep writing, kill it,
// bring up a fresh server on the same directory — the index must be
// restored from snapshot + WAL (same ids) and answer queries exactly as
// before.
func TestServeDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ts, _, _, shutdown := newDurableTestServer(t, dir)

	var add struct {
		ID int `json:"id"`
	}
	names := []string{"barak obama", "barak obamma", "angela merkel", "emmanuel macron"}
	for i, n := range names {
		post(t, ts.URL+"/add", `{"name": "`+n+`"}`, &add)
		if add.ID != i {
			t.Fatalf("add %q: id %d, want %d", n, add.ID, i)
		}
	}
	var snap struct {
		Generation uint64 `json:"generation"`
		Strings    int    `json:"strings"`
	}
	if resp := post(t, ts.URL+"/snapshot", `{}`, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot: status %d", resp.StatusCode)
	}
	if snap.Generation != 1 || snap.Strings != len(names) {
		t.Fatalf("/snapshot response: %+v", snap)
	}
	// Post-snapshot writes land in the WAL tail.
	post(t, ts.URL+"/add", `{"name": "angela merkle"}`, &add)
	if add.ID != len(names) {
		t.Fatalf("post-snapshot id = %d", add.ID)
	}
	var before struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/query", `{"name": "angela merkel"}`, &before)

	// Kill everything gracefully (the crash variant is covered by the
	// stream-layer restart tests).
	shutdown()

	ts2, m2, c2, _ := newDurableTestServer(t, dir)
	if m2.Len() != len(names)+1 {
		t.Fatalf("restarted Len = %d, want %d", m2.Len(), len(names)+1)
	}
	if cs := c2.Stats(); cs.Generation != 1 || cs.WALReplayed != 1 {
		t.Fatalf("restart recovery: generation %d, replayed %d (want 1, 1)", cs.Generation, cs.WALReplayed)
	}
	var after struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts2.URL+"/query", `{"name": "angela merkel"}`, &after)
	if len(after.Matches) != len(before.Matches) {
		t.Fatalf("restarted query differs: %v != %v", after.Matches, before.Matches)
	}
	for i := range after.Matches {
		if after.Matches[i] != before.Matches[i] {
			t.Fatalf("restarted query differs at %d: %v != %v", i, after.Matches[i], before.Matches[i])
		}
	}
	// /stats exposes the corpus counters on a durable server.
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Corpus *struct {
			Strings     int   `json:"Strings"`
			WALReplayed int64 `json:"WALReplayed"`
		} `json:"corpus"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Corpus == nil || stats.Corpus.Strings != len(names)+1 {
		t.Fatalf("/stats corpus section: %+v", stats.Corpus)
	}
}

func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp := post(t, ts.URL+"/add", `{not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/add", `{"nmae": "typo"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add: status %d", resp.StatusCode)
	}
}
