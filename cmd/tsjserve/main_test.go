package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tsjoin "repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *tsjoin.ConcurrentMatcher) {
	t.Helper()
	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ts := httptest.NewServer((&server{m: m}).handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func post(t *testing.T, url, body string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestServeAddQueryStats(t *testing.T) {
	ts, _ := newTestServer(t)

	var add struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/add", `{"name": "barak obama"}`, &add)
	if add.ID != 0 || len(add.Matches) != 0 {
		t.Fatalf("first add: %+v", add)
	}
	post(t, ts.URL+"/add", `{"name": "barak obamma"}`, &add)
	if add.ID != 1 || len(add.Matches) != 1 || add.Matches[0].ID != 0 {
		t.Fatalf("second add must match the first: %+v", add)
	}

	var query struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/query", `{"name": "barrak obama"}`, &query)
	if len(query.Matches) != 2 {
		t.Fatalf("query must match both variants: %+v", query)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Strings int   `json:"strings"`
		Shards  int   `json:"shards"`
		Adds    int64 `json:"adds"`
		Queries int64 `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Strings != 2 || stats.Shards != 3 || stats.Adds != 2 || stats.Queries != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServeStatsFilterTelemetry: /stats carries the filter-funnel and
// stage-timing fields — verified/budget_pruned/prefix_pruned counters and
// the candidate-generation and verify wall clocks.
func TestServeStatsFilterTelemetry(t *testing.T) {
	ts, _ := newTestServer(t)
	// Enough near-duplicate traffic to exercise generation + verification.
	post(t, ts.URL+"/join",
		`{"names": ["maria del carmen", "maria del karmen", "mario del carmen", "jo ng", "bob"]}`, nil)
	post(t, ts.URL+"/query", `{"name": "maria del carmen"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Verified      int64    `json:"verified"`
		BudgetPruned  *int64   `json:"budget_pruned"`
		PrefixPruned  *int64   `json:"prefix_pruned"`
		CandGenWallMs *float64 `json:"cand_gen_wall_ms"`
		VerifyWallMs  *float64 `json:"verify_wall_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetPruned == nil || stats.PrefixPruned == nil {
		t.Fatal("/stats missing budget_pruned or prefix_pruned")
	}
	if stats.CandGenWallMs == nil || stats.VerifyWallMs == nil {
		t.Fatal("/stats missing cand_gen_wall_ms or verify_wall_ms")
	}
	if stats.Verified == 0 {
		t.Fatal("verified count not populated by the join traffic")
	}
	if *stats.CandGenWallMs <= 0 {
		t.Fatalf("cand_gen_wall_ms = %v, want > 0 after traffic", *stats.CandGenWallMs)
	}
	if *stats.VerifyWallMs <= 0 {
		t.Fatalf("verify_wall_ms = %v, want > 0 after traffic", *stats.VerifyWallMs)
	}
}

func TestServeJoinBatch(t *testing.T) {
	ts, m := newTestServer(t)
	var join struct {
		First   int `json:"first"`
		Results []struct {
			ID      int         `json:"id"`
			Matches []wireMatch `json:"matches"`
		} `json:"results"`
	}
	post(t, ts.URL+"/join", `{"names": ["john smith", "jon smith", "ann lee"]}`, &join)
	if join.First != 0 || len(join.Results) != 3 {
		t.Fatalf("join: %+v", join)
	}
	if got := join.Results[1]; got.ID != 1 || len(got.Matches) != 1 || got.Matches[0].ID != 0 {
		t.Fatalf("batch element must match earlier batch element: %+v", got)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d after join", m.Len())
	}
}

func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp := post(t, ts.URL+"/add", `{not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/add", `{"nmae": "typo"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add: status %d", resp.StatusCode)
	}
}
