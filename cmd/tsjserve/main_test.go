package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tsjoin "repro"
	"repro/internal/iofault"
)

func newTestServer(t *testing.T) (*httptest.Server, *tsjoin.ConcurrentMatcher) {
	t.Helper()
	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ts := httptest.NewServer(newServer(m, nil, 0).handler())
	t.Cleanup(ts.Close)
	return ts, m
}

// newDurableTestServer builds a server backed by a persistent corpus in
// dir. The returned shutdown runs the graceful sequence (drain, close
// matcher, flush and close the corpus WAL) and is idempotent; it is also
// registered as a cleanup.
func newDurableTestServer(t *testing.T, dir string) (*httptest.Server, *tsjoin.ConcurrentMatcher, *tsjoin.Corpus, func()) {
	t.Helper()
	c, err := tsjoin.OpenCorpus(dir, tsjoin.CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(m, c, 0).handler())
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		m.Close()
		c.Close()
	}
	t.Cleanup(shutdown)
	return ts, m, c, shutdown
}

func post(t *testing.T, url, body string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestServeAddQueryStats(t *testing.T) {
	ts, _ := newTestServer(t)

	var add struct {
		ID      int         `json:"id"`
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/add", `{"name": "barak obama"}`, &add)
	if add.ID != 0 || len(add.Matches) != 0 {
		t.Fatalf("first add: %+v", add)
	}
	post(t, ts.URL+"/add", `{"name": "barak obamma"}`, &add)
	if add.ID != 1 || len(add.Matches) != 1 || add.Matches[0].ID != 0 {
		t.Fatalf("second add must match the first: %+v", add)
	}

	var query struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/query", `{"name": "barrak obama"}`, &query)
	if len(query.Matches) != 2 {
		t.Fatalf("query must match both variants: %+v", query)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Strings int   `json:"strings"`
		Shards  int   `json:"shards"`
		Adds    int64 `json:"adds"`
		Queries int64 `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Strings != 2 || stats.Shards != 3 || stats.Adds != 2 || stats.Queries != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServeStatsFilterTelemetry: /stats carries the filter-funnel and
// stage-timing fields — verified/budget_pruned/prefix_pruned counters and
// the candidate-generation and verify wall clocks.
func TestServeStatsFilterTelemetry(t *testing.T) {
	ts, _ := newTestServer(t)
	// Enough near-duplicate traffic to exercise generation + verification.
	post(t, ts.URL+"/join",
		`{"names": ["maria del carmen", "maria del karmen", "mario del carmen", "jo ng", "bob"]}`, nil)
	post(t, ts.URL+"/query", `{"name": "maria del carmen"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Verified         int64    `json:"verified"`
		BudgetPruned     *int64   `json:"budget_pruned"`
		PrefixPruned     *int64   `json:"prefix_pruned"`
		SegPrefixPruned  *int64   `json:"seg_prefix_pruned"`
		SegKeysProbed    *int64   `json:"seg_keys_probed"`
		SegTokensChecked *int64   `json:"seg_tokens_checked"`
		SegTokensSimilar *int64   `json:"seg_tokens_similar"`
		BatchedPairs     *int64   `json:"batched_pairs"`
		SIMDKernels      *int64   `json:"simd_kernels"`
		SIMDLanes        *int64   `json:"simd_lanes"`
		BatchScalarCells *int64   `json:"batch_scalar_cells"`
		SIMDWidth        *int     `json:"simd_width"`
		LaneFillPct      *float64 `json:"lane_fill_pct"`
		CandGenWallMs    *float64 `json:"cand_gen_wall_ms"`
		VerifyWallMs     *float64 `json:"verify_wall_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetPruned == nil || stats.PrefixPruned == nil {
		t.Fatal("/stats missing budget_pruned or prefix_pruned")
	}
	if stats.SegPrefixPruned == nil || stats.SegKeysProbed == nil ||
		stats.SegTokensChecked == nil || stats.SegTokensSimilar == nil {
		t.Fatal("/stats missing segment-probe funnel counters")
	}
	if *stats.SegKeysProbed == 0 {
		t.Fatal("seg_keys_probed not populated by the near-duplicate traffic")
	}
	if stats.BatchedPairs == nil || stats.SIMDKernels == nil ||
		stats.SIMDLanes == nil || stats.BatchScalarCells == nil {
		t.Fatal("/stats missing batched-verification counters")
	}
	if tsjoin.SIMDAvailable() && stats.Verified > 0 && *stats.BatchedPairs == 0 {
		t.Fatal("batched_pairs not populated despite a live kernel and verified pairs")
	}
	if stats.SIMDWidth == nil || stats.LaneFillPct == nil {
		t.Fatal("/stats missing simd_width or lane_fill_pct")
	}
	if tsjoin.SIMDAvailable() {
		if *stats.SIMDWidth <= 0 {
			t.Fatalf("simd_width = %d with a live kernel", *stats.SIMDWidth)
		}
		if *stats.SIMDKernels > 0 && (*stats.LaneFillPct <= 0 || *stats.LaneFillPct > 100) {
			t.Fatalf("lane_fill_pct = %v out of (0, 100] with %d kernels",
				*stats.LaneFillPct, *stats.SIMDKernels)
		}
	} else if *stats.SIMDWidth != 0 || *stats.LaneFillPct != 0 {
		t.Fatalf("simd_width/lane_fill_pct = %d/%v without a kernel",
			*stats.SIMDWidth, *stats.LaneFillPct)
	}
	if stats.CandGenWallMs == nil || stats.VerifyWallMs == nil {
		t.Fatal("/stats missing cand_gen_wall_ms or verify_wall_ms")
	}
	if stats.Verified == 0 {
		t.Fatal("verified count not populated by the join traffic")
	}
	if *stats.CandGenWallMs <= 0 {
		t.Fatalf("cand_gen_wall_ms = %v, want > 0 after traffic", *stats.CandGenWallMs)
	}
	if *stats.VerifyWallMs <= 0 {
		t.Fatalf("verify_wall_ms = %v, want > 0 after traffic", *stats.VerifyWallMs)
	}
}

func TestServeJoinBatch(t *testing.T) {
	ts, m := newTestServer(t)
	var join struct {
		First   int `json:"first"`
		Results []struct {
			ID      int         `json:"id"`
			Matches []wireMatch `json:"matches"`
		} `json:"results"`
	}
	post(t, ts.URL+"/join", `{"names": ["john smith", "jon smith", "ann lee"]}`, &join)
	if join.First != 0 || len(join.Results) != 3 {
		t.Fatalf("join: %+v", join)
	}
	if got := join.Results[1]; got.ID != 1 || len(got.Matches) != 1 || got.Matches[0].ID != 0 {
		t.Fatalf("batch element must match earlier batch element: %+v", got)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d after join", m.Len())
	}
}

// TestServeDelete: /delete tombstones a string live; bad ids are 400s.
func TestServeDelete(t *testing.T) {
	ts, m := newTestServer(t)
	post(t, ts.URL+"/join", `{"names": ["john smith", "jon smith"]}`, nil)
	var del struct {
		Deleted int `json:"deleted"`
	}
	if resp := post(t, ts.URL+"/delete", `{"id": 0}`, &del); resp.StatusCode != http.StatusOK || del.Deleted != 0 {
		t.Fatalf("/delete: status %d, body %+v", resp.StatusCode, del)
	}
	if got := m.Query("jon smith"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("deleted string still matching: %v", got)
	}
	if resp := post(t, ts.URL+"/delete", `{"id": 0}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/delete", `{}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing id: status %d", resp.StatusCode)
	}
}

// TestServeLatencyHistograms: /stats carries per-endpoint p50/p95/p99
// latency summaries populated by traffic.
func TestServeLatencyHistograms(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/add", `{"name": "maria del carmen"}`, nil)
	post(t, ts.URL+"/add", `{"name": "maria del karmen"}`, nil)
	post(t, ts.URL+"/query", `{"name": "mario del carmen"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Latency map[string]struct {
			Count  int64    `json:"count"`
			P50Ms  *float64 `json:"p50_ms"`
			P95Ms  *float64 `json:"p95_ms"`
			P99Ms  *float64 `json:"p99_ms"`
			MeanMs *float64 `json:"mean_ms"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"add", "query", "join", "delete", "snapshot"} {
		if _, ok := stats.Latency[ep]; !ok {
			t.Fatalf("/stats latency missing endpoint %q", ep)
		}
	}
	add := stats.Latency["add"]
	if add.Count != 2 {
		t.Fatalf("add latency count = %d, want 2", add.Count)
	}
	if add.P50Ms == nil || add.P95Ms == nil || add.P99Ms == nil || add.MeanMs == nil {
		t.Fatal("latency quantile fields missing")
	}
	if *add.P99Ms < *add.P50Ms {
		t.Fatalf("p99 (%v) below p50 (%v)", *add.P99Ms, *add.P50Ms)
	}
	if *add.MeanMs <= 0 {
		t.Fatalf("mean_ms = %v, want > 0 after traffic", *add.MeanMs)
	}
	if stats.Latency["query"].Count != 1 || stats.Latency["join"].Count != 0 {
		t.Fatalf("per-endpoint counts wrong: %+v", stats.Latency)
	}
}

// TestServeSnapshotRequiresData: without -data, /snapshot is a 409.
func TestServeSnapshotRequiresData(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp := post(t, ts.URL+"/snapshot", `{}`, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("/snapshot without a corpus: status %d, want 409", resp.StatusCode)
	}
}

// TestServeDurableWarmRestart is the serving-layer acceptance test:
// populate a -data server, snapshot over HTTP, keep writing, kill it,
// bring up a fresh server on the same directory — the index must be
// restored from snapshot + WAL (same ids) and answer queries exactly as
// before.
func TestServeDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ts, _, _, shutdown := newDurableTestServer(t, dir)

	var add struct {
		ID int `json:"id"`
	}
	names := []string{"barak obama", "barak obamma", "angela merkel", "emmanuel macron"}
	for i, n := range names {
		post(t, ts.URL+"/add", `{"name": "`+n+`"}`, &add)
		if add.ID != i {
			t.Fatalf("add %q: id %d, want %d", n, add.ID, i)
		}
	}
	var snap struct {
		Generation uint64 `json:"generation"`
		Strings    int    `json:"strings"`
	}
	if resp := post(t, ts.URL+"/snapshot", `{}`, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot: status %d", resp.StatusCode)
	}
	if snap.Generation != 1 || snap.Strings != len(names) {
		t.Fatalf("/snapshot response: %+v", snap)
	}
	// Post-snapshot writes land in the WAL tail.
	post(t, ts.URL+"/add", `{"name": "angela merkle"}`, &add)
	if add.ID != len(names) {
		t.Fatalf("post-snapshot id = %d", add.ID)
	}
	var before struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts.URL+"/query", `{"name": "angela merkel"}`, &before)

	// Kill everything gracefully (the crash variant is covered by the
	// stream-layer restart tests).
	shutdown()

	ts2, m2, c2, _ := newDurableTestServer(t, dir)
	if m2.Len() != len(names)+1 {
		t.Fatalf("restarted Len = %d, want %d", m2.Len(), len(names)+1)
	}
	if cs := c2.Stats(); cs.Generation != 1 || cs.WALReplayed != 1 {
		t.Fatalf("restart recovery: generation %d, replayed %d (want 1, 1)", cs.Generation, cs.WALReplayed)
	}
	var after struct {
		Matches []wireMatch `json:"matches"`
	}
	post(t, ts2.URL+"/query", `{"name": "angela merkel"}`, &after)
	if len(after.Matches) != len(before.Matches) {
		t.Fatalf("restarted query differs: %v != %v", after.Matches, before.Matches)
	}
	for i := range after.Matches {
		if after.Matches[i] != before.Matches[i] {
			t.Fatalf("restarted query differs at %d: %v != %v", i, after.Matches[i], before.Matches[i])
		}
	}
	// /stats exposes the corpus counters on a durable server.
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Corpus *struct {
			Strings     int   `json:"Strings"`
			WALReplayed int64 `json:"WALReplayed"`
		} `json:"corpus"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Corpus == nil || stats.Corpus.Strings != len(names)+1 {
		t.Fatalf("/stats corpus section: %+v", stats.Corpus)
	}
}

// request issues an arbitrary-method HTTP request and returns the
// response (body closed; status and headers remain readable).
func request(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestServeErrorPaths: every malformed-request class maps to its
// status — wrong method (including writes to the read-only endpoints),
// malformed and unknown-field JSON, missing/unknown delete ids, and
// oversized bodies (413, not a generic 400).
func TestServeErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	oversized := `{"name": "` + strings.Repeat("a", maxBodyBytes+16) + `"}`
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"malformed json", http.MethodPost, "/add", `{not json`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/add", `{"nmae": "typo"}`, http.StatusBadRequest},
		{"get on mutating endpoint", http.MethodGet, "/add", "", http.StatusMethodNotAllowed},
		{"put on query", http.MethodPut, "/query", `{"name": "x"}`, http.StatusMethodNotAllowed},
		{"missing delete id", http.MethodPost, "/delete", `{}`, http.StatusBadRequest},
		{"unknown delete id", http.MethodPost, "/delete", `{"id": 99}`, http.StatusBadRequest},
		{"oversized body", http.MethodPost, "/add", oversized, http.StatusRequestEntityTooLarge},
		{"post to stats", http.MethodPost, "/stats", `{}`, http.StatusMethodNotAllowed},
		{"post to healthz", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{"delete on readyz", http.MethodDelete, "/readyz", "", http.StatusMethodNotAllowed},
		{"get stats", http.MethodGet, "/stats", "", http.StatusOK},
		{"get healthz", http.MethodGet, "/healthz", "", http.StatusOK},
		{"get readyz", http.MethodGet, "/readyz", "", http.StatusOK},
	}
	for _, tc := range cases {
		if resp := request(t, tc.method, ts.URL+tc.path, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: %s %s -> status %d, want %d", tc.name, tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}

	// The failures above must be visible in the per-endpoint error
	// counters.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Endpoints map[string]struct {
			Errors int64 `json:"errors"`
			Shed   int64 `json:"shed"`
			Panics int64 `json:"panics"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Endpoints["add"].Errors < 4 {
		t.Fatalf("add error counter = %d, want >= 4 (malformed, unknown field, method, oversized)", stats.Endpoints["add"].Errors)
	}
	if stats.Endpoints["delete"].Errors != 2 {
		t.Fatalf("delete error counter = %d, want 2", stats.Endpoints["delete"].Errors)
	}
	if stats.Endpoints["query"].Panics != 0 || stats.Endpoints["query"].Shed != 0 {
		t.Fatalf("spurious panic/shed counts: %+v", stats.Endpoints["query"])
	}
}

// TestServeShedOverload: when every concurrency slot is held, requests
// are rejected immediately with 503 + Retry-After (never queued), the
// shed counter advances, and freeing the slots restores service.
func TestServeShedOverload(t *testing.T) {
	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	s := newServer(m, nil, 1)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	s.inflight <- struct{}{} // occupy the only slot
	resp := request(t, http.MethodPost, ts.URL+"/query", `{"name": "x"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.ctr["query"].shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	<-s.inflight // drain; service resumes
	if resp := request(t, http.MethodPost, ts.URL+"/query", `{"name": "x"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after drain: status %d, want 200", resp.StatusCode)
	}
}

// TestServePanicRecovery: a handler panic becomes a 500, is counted,
// and does not kill the server.
func TestServePanicRecovery(t *testing.T) {
	m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	s := newServer(m, nil, 0)
	h := s.instrument("add", func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/add", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if got := s.ctr["add"].panics.Load(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	if got := s.ctr["add"].errors.Load(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}
	// The wrapper recovered: the same server keeps serving.
	rec2 := httptest.NewRecorder()
	s.instrument("query", s.handleQuery)(rec2, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"name": "x"}`)))
	if rec2.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", rec2.Code)
	}
}

// TestServeDegradedEndToEnd: a WAL fsync failure flips the server to
// read-only — the failing mutation and everything after it get 503 +
// Retry-After while /query and /stats keep serving, /readyz reports
// not-ready while /healthz stays 200 — and the background recovery loop
// heals the corpus and restores writes without a restart.
func TestServeDegradedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(iofault.OS, iofault.Disarmed())
	c, err := tsjoin.OpenCorpus(dir, tsjoin.CorpusOptions{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(m, c, 0)
	ts := httptest.NewServer(s.handler())
	ctx, cancel := context.WithCancel(context.Background())
	var recoveryDone chan struct{}  // non-nil once the recovery loop starts
	t.Cleanup(func() { c.Close() }) // LIFO: runs after shutdown below
	stopped := false
	shutdown := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if recoveryDone != nil {
			<-recoveryDone
		}
		ts.Close()
		m.Close()
	}
	t.Cleanup(shutdown)

	var add struct {
		ID int `json:"id"`
	}
	post(t, ts.URL+"/add", `{"name": "barak obama"}`, &add)
	if add.ID != 0 {
		t.Fatalf("healthy add: %+v", add)
	}

	// Fail the next WAL fsync: the add is rejected and the write path
	// seals.
	inj.SetPlan(iofault.Plan{FailAt: 0, Only: iofault.OpSync})
	resp := request(t, http.MethodPost, ts.URL+"/add", `{"name": "angela merkel"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("add over failing fsync: status %d, want 503", resp.StatusCode)
	}
	// Subsequent mutations are gated before touching the matcher.
	resp = request(t, http.MethodPost, ts.URL+"/add", `{"name": "emmanuel macron"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated add: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// Reads keep serving from the live index.
	var query struct {
		Matches []wireMatch `json:"matches"`
	}
	if resp := post(t, ts.URL+"/query", `{"name": "barak obamma"}`, &query); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d, want 200", resp.StatusCode)
	}
	if len(query.Matches) != 1 || query.Matches[0].ID != 0 {
		t.Fatalf("degraded query result: %+v", query)
	}

	// /readyz flips; /healthz (pure liveness) does not; /stats says why.
	if resp := request(t, http.MethodGet, ts.URL+"/readyz", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz: status %d, want 503", resp.StatusCode)
	}
	if resp := request(t, http.MethodGet, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz: status %d, want 200", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Degraded      bool   `json:"degraded"`
		DegradedCause string `json:"degraded_cause"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !stats.Degraded || stats.DegradedCause == "" {
		t.Fatalf("degraded /stats: %+v", stats)
	}

	// Start the recovery loop (only now, so it cannot heal the corpus
	// between the assertions above): the injector is healthy again, so
	// the loop rotates to a fresh generation and writes and readiness
	// come back.
	recoveryDone = make(chan struct{})
	go func() {
		defer close(recoveryDone)
		runRecovery(ctx, s, 2*time.Millisecond)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.degraded() != nil {
		if time.Now().After(deadline) {
			t.Fatal("recovery loop did not heal the corpus in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	post(t, ts.URL+"/add", `{"name": "angela merkel"}`, &add)
	if add.ID != 1 {
		t.Fatalf("post-recovery add: %+v (rolled-back add must not have consumed an id)", add)
	}
	if resp := request(t, http.MethodGet, ts.URL+"/readyz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healed /readyz: status %d, want 200", resp.StatusCode)
	}

	// The acknowledged state — and only it — survives a restart.
	shutdown()
	if err := c.Close(); err != nil {
		t.Fatalf("close after heal: %v", err)
	}
	c2, err := tsjoin.OpenCorpus(dir, tsjoin.CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 || c2.Live() != 2 {
		t.Fatalf("restart after heal: Len=%d Live=%d, want 2/2", c2.Len(), c2.Live())
	}
}
