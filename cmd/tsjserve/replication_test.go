package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	tsjoin "repro"
	"repro/internal/backoff"
	"repro/internal/iofault"
	"repro/internal/replica"
)

// Fast replication timings so the e2e tests converge in milliseconds.
func fastPrimaryOptions(t *testing.T) replica.PrimaryOptions {
	return replica.PrimaryOptions{
		BatchRecords: 4,
		Heartbeat:    15 * time.Millisecond,
		Backoff:      backoff.Policy{Base: 2 * time.Millisecond, Cap: 30 * time.Millisecond},
		Logf:         t.Logf,
	}
}

// newReplPrimary starts a durable tsjserve primary with a shipping-
// capable replication side, mirroring run()'s wiring.
func newReplPrimary(t *testing.T, dir string) (*server, *httptest.Server, func()) {
	t.Helper()
	s, ts := buildReplServer(t, dir, nil)
	s.prim = replica.NewPrimary(s.c, fastPrimaryOptions(t))
	ts.Start()
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		if p := s.shipper(); p != nil {
			p.Close()
		}
		s.closeEngine()
	}
	t.Cleanup(shutdown)
	return s, ts, shutdown
}

// newReplStandby starts a standby replicating from primaryURL. The
// watchdog runs until the test ends or the standby seals.
func newReplStandby(t *testing.T, dir, primaryURL string) (*server, *httptest.Server, func()) {
	t.Helper()
	s, ts := buildReplServer(t, dir, nil)
	s.role.Store(roleStandby)
	// The listener exists before Start, so the advertise URL is known
	// before any replication traffic can race the field writes below.
	advertise := "http://" + ts.Listener.Addr().String()
	s.stby = replica.NewStandby(serverEngine{s}, s.resetEngine, replica.StandbyOptions{
		Primary:          primaryURL,
		Advertise:        advertise,
		StateDir:         dir,
		RegisterInterval: 60 * time.Millisecond,
		Backoff:          backoff.Policy{Base: 2 * time.Millisecond, Cap: 30 * time.Millisecond},
		Logf:             t.Logf,
	})
	ts.Start()
	ctx, cancel := context.WithCancel(context.Background())
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		s.stby.Run(ctx)
	}()
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		cancel()
		<-watchdogDone
		ts.Close()
		if p := s.shipper(); p != nil {
			p.Close()
		}
		s.closeEngine()
	}
	t.Cleanup(shutdown)
	return s, ts, shutdown
}

// buildReplServer assembles an unstarted durable server with the reset
// plumbing (dataDir + reopen options) that replication needs.
func buildReplServer(t *testing.T, dir string, fs iofault.FS) (*server, *httptest.Server) {
	t.Helper()
	copts := tsjoin.CorpusOptions{FS: fs}
	mopts := tsjoin.ConcurrentMatcherOptions{
		MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
		Shards:         2,
	}
	c, err := tsjoin.OpenCorpus(dir, copts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, mopts)
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	s := newServer(m, c, 0)
	s.dataDir = dir
	s.mopts = mopts
	s.copts = copts
	return s, httptest.NewUnstartedServer(s.handler())
}

// getJSON GETs url and decodes the body (request() closes its body, so
// it cannot be used for responses that need decoding).
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getReplication(t *testing.T, baseURL string) replStatus {
	t.Helper()
	var st replStatus
	getJSON(t, baseURL+"/replication", &st)
	return st
}

func queryNames(t *testing.T, baseURL, name string) []wireMatch {
	t.Helper()
	var out struct {
		Matches []wireMatch `json:"matches"`
	}
	if resp := post(t, baseURL+"/query", fmt.Sprintf(`{"name": %q}`, name), &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d", name, resp.StatusCode)
	}
	return out.Matches
}

// TestReplicationHandlerTable drives every replication endpoint through
// its rejection paths: wrong method, wrong role, syncing standby,
// degraded promote.
func TestReplicationHandlerTable(t *testing.T) {
	t.Run("in-memory node", func(t *testing.T) {
		ts, _ := newTestServer(t)
		cases := []struct {
			method, path, body string
			want               int
		}{
			{http.MethodPost, "/replication", "", http.StatusMethodNotAllowed},
			{http.MethodGet, "/replication", "", http.StatusOK},
			{http.MethodGet, "/promote", "", http.StatusMethodNotAllowed},
			{http.MethodPost, "/promote", "{}", http.StatusConflict},
			{http.MethodPost, "/replication/register", `{"advertise":"http://x","lsn":0}`, http.StatusServiceUnavailable},
			{http.MethodPost, "/replication/apply", `{"from":0}`, http.StatusConflict},
		}
		for _, tc := range cases {
			resp := request(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		}
		if st := getReplication(t, ts.URL); st.Role != roleNone || st.Primary != nil || st.Standby != nil {
			t.Fatalf("in-memory /replication: %+v", st)
		}
	})

	t.Run("syncing standby refuses promote and writes", func(t *testing.T) {
		// A standby whose primary is unreachable; a resync chunk posted
		// directly marks it mid-bootstrap.
		s, ts, _ := newReplStandby(t, t.TempDir(), "http://127.0.0.1:1")
		resp := request(t, http.MethodPost, ts.URL+"/replication/apply",
			`{"from":0,"resync":true,"sync_to":7}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resync chunk: status %d", resp.StatusCode)
		}
		if resp := request(t, http.MethodPost, ts.URL+"/promote", "{}"); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("promote while syncing: status %d, want 503", resp.StatusCode)
		}
		if resp := request(t, http.MethodPost, ts.URL+"/add", `{"name":"x"}`); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("add on standby: status %d, want 503", resp.StatusCode)
		} else if resp.Header.Get("Retry-After") == "" {
			t.Fatal("standby write 503 missing Retry-After")
		}
		if resp := request(t, http.MethodGet, ts.URL+"/readyz", ""); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("syncing /readyz: status %d, want 503", resp.StatusCode)
		}
		if st := getReplication(t, ts.URL); st.Role != roleStandby || st.Standby == nil || !st.Standby.Syncing {
			t.Fatalf("syncing /replication: %+v", st)
		}
		if s.roleName() != roleStandby {
			t.Fatalf("role after refused promote: %q", s.roleName())
		}
	})

	t.Run("promote while degraded", func(t *testing.T) {
		inj := iofault.NewInjector(iofault.OS, iofault.Disarmed())
		s, ts := buildReplServer(t, t.TempDir(), inj)
		s.role.Store(roleStandby)
		s.stby = replica.NewStandby(serverEngine{s}, s.resetEngine, replica.StandbyOptions{
			Primary: "http://127.0.0.1:1", Advertise: "http://unused", Logf: t.Logf,
		})
		ts.Start()
		t.Cleanup(func() { ts.Close(); s.closeEngine() })

		// Ship one real record whose WAL fsync fails: the apply errors and
		// the corpus degrades, but the standby is NOT syncing — promotion
		// is refused only because the final seal fsync cannot be trusted.
		scratch, err := tsjoin.OpenCorpus(t.TempDir(), tsjoin.CorpusOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scratch.Add("barak obama"); err != nil {
			t.Fatal(err)
		}
		payloads, _ := scratch.BootstrapPayloads()
		scratch.Close()
		crc := crc32.Checksum(payloads[0], crc32.MakeTable(crc32.Castagnoli))
		body, _ := json.Marshal(map[string]any{
			"from":   0,
			"frames": []map[string]any{{"p": payloads[0], "c": crc}},
		})
		inj.SetPlan(iofault.Plan{FailAt: 0, Only: iofault.OpSync})
		resp := request(t, http.MethodPost, ts.URL+"/replication/apply", string(body))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("apply over failing fsync: status %d, want 500", resp.StatusCode)
		}
		if s.degraded() == nil {
			t.Fatal("corpus not degraded after failed apply fsync")
		}
		resp = request(t, http.MethodPost, ts.URL+"/promote", "{}")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("promote while degraded: status %d, want 503", resp.StatusCode)
		}
		if s.roleName() != roleStandby || s.stby.Sealed() {
			t.Fatal("failed promote must leave the standby unsealed and read-only")
		}
		// Heal and retry: promotion is retryable after recovery.
		inj.SetPlan(iofault.Disarmed())
		if err := s.corpusHandle().Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if resp := request(t, http.MethodPost, ts.URL+"/promote", "{}"); resp.StatusCode != http.StatusOK {
			t.Fatalf("promote after heal: status %d, want 200", resp.StatusCode)
		}
		if s.roleName() != rolePrimary {
			t.Fatalf("role after promote: %q", s.roleName())
		}
	})
}

// TestServeFailover is the end-to-end kill-the-primary drill: seed a
// primary over HTTP, attach a standby, let it catch up, kill the
// primary, promote the standby, and check the promoted node serves the
// same answers and accepts writes at the right next id.
func TestServeFailover(t *testing.T) {
	prim, primTS, killPrimary := newReplPrimary(t, t.TempDir())

	var add struct {
		ID int `json:"id"`
	}
	names := []string{"barak obama", "barack obama", "angela merkel", "emmanuel macron", "justin trudeau"}
	for _, n := range names {
		if resp := post(t, primTS.URL+"/add", fmt.Sprintf(`{"name": %q}`, n), &add); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed add: status %d", resp.StatusCode)
		}
	}
	if resp := post(t, primTS.URL+"/delete", `{"id": 3}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed delete: status %d", resp.StatusCode)
	}

	stby, stbyTS, _ := newReplStandby(t, t.TempDir(), primTS.URL)

	// Converge: the standby registers, bootstraps/streams to the
	// primary's LSN, and reports ready.
	deadline := time.Now().Add(10 * time.Second)
	primLSN := prim.corpusHandle().LSN()
	for {
		st := getReplication(t, stbyTS.URL)
		if st.Standby != nil && !st.Standby.Syncing && st.Standby.LSN == primLSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby did not converge: %+v (primary lsn %d)", st.Standby, primLSN)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// More live traffic after convergence streams through too.
	if resp := post(t, primTS.URL+"/add", `{"name": "barak h obama"}`, &add); resp.StatusCode != http.StatusOK {
		t.Fatalf("live add: status %d", resp.StatusCode)
	}
	liveLSN := prim.corpusHandle().LSN()
	for stby.corpusHandle().LSN() != liveLSN {
		if time.Now().After(deadline) {
			t.Fatalf("standby did not catch the live tail: lsn %d, want %d", stby.corpusHandle().LSN(), liveLSN)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		if resp := request(t, http.MethodGet, stbyTS.URL+"/readyz", ""); resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The primary sees exactly one follower, caught up.
	if st := getReplication(t, primTS.URL); st.Role != rolePrimary || st.Primary == nil ||
		len(st.Primary.Followers) != 1 || st.Primary.Followers[0].AckedLSN != liveLSN {
		t.Fatalf("primary /replication: %+v", st)
	}

	// Freeze the answers the promoted standby must reproduce.
	probes := []string{"barak obamma", "angela merkl", "justin trudeau"}
	want := make(map[string][]wireMatch, len(probes))
	for _, p := range probes {
		want[p] = queryNames(t, primTS.URL, p)
	}
	nextID := prim.corpusHandle().Len()

	// Standby rejects writes while the primary lives.
	if resp := request(t, http.MethodPost, stbyTS.URL+"/add", `{"name": "nope"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby add: status %d, want 503", resp.StatusCode)
	}

	killPrimary()

	var promoted struct {
		Role string `json:"role"`
		LSN  uint64 `json:"lsn"`
	}
	if resp := post(t, stbyTS.URL+"/promote", "{}", &promoted); resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if promoted.Role != rolePrimary || promoted.LSN != liveLSN {
		t.Fatalf("promote response: %+v (want lsn %d)", promoted, liveLSN)
	}
	// Promotion is idempotent.
	var again struct {
		Already bool `json:"already"`
	}
	if resp := post(t, stbyTS.URL+"/promote", "{}", &again); resp.StatusCode != http.StatusOK || !again.Already {
		t.Fatalf("second promote: status %d, already=%v", resp.StatusCode, again.Already)
	}

	// Byte-identical query answers.
	for _, p := range probes {
		got := queryNames(t, stbyTS.URL, p)
		if fmt.Sprint(got) != fmt.Sprint(want[p]) {
			t.Fatalf("promoted query %q: %v, want %v", p, got, want[p])
		}
	}
	// Writable at the exact next id, and a shipper of its own.
	if resp := post(t, stbyTS.URL+"/add", `{"name": "new after failover"}`, &add); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promote add: status %d", resp.StatusCode)
	}
	if add.ID != nextID {
		t.Fatalf("post-promote add id: %d, want %d", add.ID, nextID)
	}
	if resp := request(t, http.MethodGet, stbyTS.URL+"/readyz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted /readyz: status %d, want 200", resp.StatusCode)
	}
	st := getReplication(t, stbyTS.URL)
	if st.Role != rolePrimary || st.Primary == nil || st.Standby == nil || !st.Standby.Sealed {
		t.Fatalf("promoted /replication: %+v", st)
	}
	// /stats carries the replication section.
	var stats struct {
		Replication *replStatus `json:"replication"`
	}
	getJSON(t, stbyTS.URL+"/stats", &stats)
	if stats.Replication == nil || stats.Replication.Role != rolePrimary {
		t.Fatalf("/stats replication: %+v", stats.Replication)
	}
}
