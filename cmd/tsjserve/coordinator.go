// Coordinator mode: tsjserve -coordinator -workers=... serves the
// single-node wire contract over a fleet of worker tsjserves (see
// internal/distrib). The coordinator owns no corpus — it owns the
// epoch-stamped partition map, the global id table, the membership
// heartbeats that promote worker standbys, and the scatter/merge logic.

package main

import (
	"context"
	"errors"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/distrib"
)

// coordinatorConfig carries the flag subset coordinator mode uses.
type coordinatorConfig struct {
	addr         string
	workers      string
	heartbeat    time.Duration
	failAfter    int
	queryTimeout time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
}

// runCoordinator owns the coordinator lifecycle: parse the worker map,
// start the membership loop, serve until SIGINT/SIGTERM, then drain.
func runCoordinator(cfg coordinatorConfig) error {
	pm, err := distrib.ParseWorkers(cfg.workers)
	if err != nil {
		return errors.New("coordinator: " + err.Error() + " (use -workers=primary|standby,primary,...)")
	}
	co := distrib.New(pm, distrib.Options{
		QueryTimeout: cfg.queryTimeout,
		WriteTimeout: cfg.writeTimeout,
		Heartbeat:    cfg.heartbeat,
		FailAfter:    cfg.failAfter,
		Logf:         log.Printf,
	})

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		co.Run(ctx)
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("coordinator listening on %s (%d shards, heartbeat=%v, fail-after=%d)",
			cfg.addr, len(pm.Shards), cfg.heartbeat, cfg.failAfter)
		errc <- srv.ListenAndServe()
	}()

	var serveErr error
	select {
	case serveErr = <-errc:
	case <-ctx.Done():
		log.Print("coordinator shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	}
	stop()
	bg.Wait()
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
