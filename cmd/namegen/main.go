// Command namegen emits synthetic tokenized-string datasets: the name
// corpora (with optional planted fraud-ring ground truth) and the labeled
// name-change pairs used throughout the evaluation.
//
// Usage:
//
//	namegen -n 100000 > names.txt
//	namegen -n 100000 -rings rings.txt > names.txt
//	namegen -changes 10000 > changes.tsv   # old<TAB>new<TAB>fraud
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/namegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("namegen: ")

	n := flag.Int("n", 10000, "number of names to generate")
	seed := flag.Int64("seed", 42, "generation seed")
	ringsOut := flag.String("rings", "", "also write ring ground truth (one ring per line, member ids) to this file")
	changes := flag.Int("changes", 0, "instead of a corpus, emit this many labeled name-change pairs (half legit, half fraud)")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *changes > 0 {
		pairs := namegen.NameChanges(namegen.ChangeConfig{
			Seed:     *seed,
			NumLegit: *changes / 2,
			NumFraud: *changes - *changes/2,
		})
		for _, p := range pairs {
			fmt.Fprintf(w, "%s\t%s\t%v\n", p.Old, p.New, p.Fraud)
		}
		return
	}

	names, rings := namegen.GenerateWithRings(namegen.Config{Seed: *seed, NumNames: *n})
	for _, name := range names {
		fmt.Fprintln(w, name)
	}
	if *ringsOut != "" {
		f, err := os.Create(*ringsOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		rw := bufio.NewWriter(f)
		defer rw.Flush()
		for _, r := range rings {
			for i, m := range r.Members {
				if i > 0 {
					fmt.Fprint(rw, " ")
				}
				fmt.Fprint(rw, m)
			}
			fmt.Fprintln(rw)
		}
	}
}
