// Command tsjexp regenerates the paper's evaluation figures (Sec. V) on
// the synthetic workload and prints each as an aligned table. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	tsjexp -fig all            # every figure at the default workload
//	tsjexp -fig 1 -n 20000     # Fig. 1 on a 20k-name corpus
//	tsjexp -fig 7 -hmj 5000    # Fig. 7 with a 5k-name HMJ comparison
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjexp: ")

	fig := flag.String("fig", "all", "figure to reproduce: 1..7 or 'all'")
	n := flag.Int("n", 0, "corpus size (default: the workload default, 10000)")
	hmjN := flag.Int("hmj", 0, "corpus size for the HMJ comparison in fig 7 (default 4000)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	w := experiments.DefaultWorkload()
	w.Seed = *seed
	if *n > 0 {
		w.NumNames = *n
	}
	if *hmjN > 0 {
		w.HMJNames = *hmjN
	}

	switch *fig {
	case "all":
		for _, t := range experiments.All(w) {
			t.Render(os.Stdout)
		}
	case "1":
		experiments.Fig1(w).Render(os.Stdout)
	case "2":
		experiments.Fig2(w).Render(os.Stdout)
	case "3":
		experiments.Fig3(w).Render(os.Stdout)
	case "4":
		experiments.Fig4(w).Render(os.Stdout)
	case "5":
		experiments.Fig5(w).Render(os.Stdout)
	case "6":
		experiments.Fig6(w).Render(os.Stdout)
	case "7":
		experiments.Fig7(w).Render(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1..7 or all)\n", *fig)
		os.Exit(2)
	}
}
