// Command tsjexp regenerates the paper's evaluation figures (Sec. V) on
// the synthetic workload and prints each as an aligned table. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	tsjexp -fig all            # every figure at the default workload
//	tsjexp -fig 1 -n 20000     # Fig. 1 on a 20k-name corpus
//	tsjexp -fig 7 -hmj 5000    # Fig. 7 with a 5k-name HMJ comparison
//
// Load-generator mode measures the concurrent ShardedMatcher's throughput
// against shard count (the serving-layer scaling story behind tsjserve):
//
//	tsjexp -load                          # sweep 1,2,4,GOMAXPROCS shards
//	tsjexp -load -n 50000 -clients 16 -shards 1,4,8,16
//
// With -cluster the same stream is driven over HTTP at a running
// tsjserve coordinator instead, and the report splits client-observed
// end-to-end latency from the worker-side engine wall time (the rest is
// routing, scatter/merge, and the network):
//
//	tsjexp -load -cluster http://localhost:8080 -n 2000 -qpa 2
//
// Verify-bench mode times the verify stage (threshold-aware bounded
// verifier vs the exact unbounded one) so BENCH trajectories can track
// the hottest path directly:
//
//	tsjexp -verify                        # T in {0.1, 0.2, 0.3}
//	tsjexp -verify -n 20000 -ts 0.05,0.25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjexp: ")

	fig := flag.String("fig", "all", "figure to reproduce: 1..7, 'funnel', or 'all'")
	n := flag.Int("n", 0, "corpus size (default: 10000 for figures, 20000 for -load)")
	hmjN := flag.Int("hmj", 0, "corpus size for the HMJ comparison in fig 7 (default 4000)")
	seed := flag.Int64("seed", 42, "workload seed")
	load := flag.Bool("load", false, "load-generator mode: ShardedMatcher throughput vs shard count")
	verify := flag.Bool("verify", false, "verify-bench mode: verify-stage wall time, bounded vs exact")
	tsList := flag.String("ts", "", "verify mode: comma-separated NSLD thresholds (default 0.1,0.2,0.3)")
	clients := flag.Int("clients", 0, "load mode: concurrent clients (default 2*GOMAXPROCS)")
	shardList := flag.String("shards", "", "load mode: comma-separated shard counts (default 1,2,4,GOMAXPROCS)")
	queriesPerAdd := flag.Int("qpa", 1, "load mode: queries issued per add (0 for a write-only stream)")
	cluster := flag.String("cluster", "", "load mode: drive a tsjserve coordinator at this URL instead of the in-process matcher")
	flag.Parse()

	if *verify {
		cfg := experiments.VerifyBenchConfig{Seed: *seed, NumNames: *n}
		var err error
		if cfg.Ts, err = parseThresholdList(*tsList); err != nil {
			log.Fatal(err)
		}
		experiments.VerifyBench(cfg).Render(os.Stdout)
		return
	}

	if *load && *cluster != "" {
		t, err := experiments.ClusterLoad(experiments.ClusterLoadConfig{
			Coordinator:   strings.TrimRight(*cluster, "/"),
			Seed:          *seed,
			NumNames:      *n,
			Clients:       *clients,
			QueriesPerAdd: *queriesPerAdd,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.Render(os.Stdout)
		return
	}
	if *cluster != "" {
		log.Fatal("-cluster requires -load")
	}

	if *load {
		cfg := experiments.StreamLoadConfig{
			Seed:          *seed,
			NumNames:      *n,
			Clients:       *clients,
			QueriesPerAdd: *queriesPerAdd,
		}
		var err error
		if cfg.ShardCounts, err = parseShardList(*shardList); err != nil {
			log.Fatal(err)
		}
		experiments.StreamLoad(cfg).Render(os.Stdout)
		return
	}

	w := experiments.DefaultWorkload()
	w.Seed = *seed
	if *n > 0 {
		w.NumNames = *n
	}
	if *hmjN > 0 {
		w.HMJNames = *hmjN
	}

	switch *fig {
	case "all":
		for _, t := range experiments.All(w) {
			t.Render(os.Stdout)
		}
	case "1":
		experiments.Fig1(w).Render(os.Stdout)
	case "2":
		experiments.Fig2(w).Render(os.Stdout)
	case "3":
		experiments.Fig3(w).Render(os.Stdout)
	case "4":
		experiments.Fig4(w).Render(os.Stdout)
	case "5":
		experiments.Fig5(w).Render(os.Stdout)
	case "6":
		experiments.Fig6(w).Render(os.Stdout)
	case "7":
		experiments.Fig7(w).Render(os.Stdout)
	case "funnel":
		experiments.Funnel(w).Render(os.Stdout)
		experiments.SegmentFunnel(w).Render(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1..7, funnel, or all)\n", *fig)
		os.Exit(2)
	}
}

// parseThresholdList parses "0.1,0.3" into thresholds ("" means defaults).
func parseThresholdList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		t, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || t < 0 || t >= 1 {
			return nil, fmt.Errorf("bad threshold %q (want values in [0, 1), e.g. -ts 0.1,0.3)", f)
		}
		out = append(out, t)
	}
	return out, nil
}

// parseShardList parses "1,4,8" into shard counts ("" means defaults).
func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want positive integers, e.g. -shards 1,4,8)", f)
		}
		out = append(out, n)
	}
	return out, nil
}
