package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.80GHz
BenchmarkVerifyBounded/t=0.1 	14050412	       173.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerifyBatch/t=0.3/simd            	  109737	     20569 ns/op	       231.6 ns/pair	       0 B/op	       0 allocs/op
--- some test log line
PASS
ok  	repro	20.793s
goos: linux
goarch: amd64
pkg: repro/internal/stream
cpu: Intel(R) Xeon(R) CPU @ 2.80GHz
BenchmarkSegmentProbe/T=0.10-8 	 1000000	      1043 ns/op
PASS
ok  	repro/internal/stream	1.201s
`

func TestParseBench(t *testing.T) {
	recs, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[1]
	if r.Name != "BenchmarkVerifyBatch/t=0.3/simd" || r.Pkg != "repro" || r.Iterations != 109737 {
		t.Fatalf("record mismatch: %+v", r)
	}
	if r.Metrics["ns/op"] != 20569 || r.Metrics["ns/pair"] != 231.6 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics mismatch: %+v", r.Metrics)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Fatalf("context mismatch: %+v", r)
	}
	// The third record must carry the second pkg header, not the first.
	if recs[2].Pkg != "repro/internal/stream" {
		t.Fatalf("pkg context not updated: %+v", recs[2])
	}
	if recs[2].Metrics["ns/op"] != 1043 {
		t.Fatalf("single-metric record mismatch: %+v", recs[2].Metrics)
	}
}

func mkDoc(commit string, recs ...Record) Doc {
	return Doc{Commit: commit, Records: recs}
}

func rec(pkg, name, goarch string, metrics map[string]float64) Record {
	return Record{Name: name, Pkg: pkg, Goarch: goarch, Iterations: 1000, Metrics: metrics}
}

func TestCompareDocs(t *testing.T) {
	oldDoc := mkDoc("aaa",
		rec("repro", "BenchmarkVerifyBatch/t=0.3/simd", "amd64", map[string]float64{"ns/op": 20000, "ns/pair": 228.6}),
		rec("repro", "BenchmarkVerifyBatch/t=0.1/simd", "amd64", map[string]float64{"ns/op": 16000, "ns/pair": 185.0}),
		rec("repro", "BenchmarkVerifyBounded/t=0.1", "amd64", map[string]float64{"ns/op": 173.1, "allocs/op": 0}),
		rec("repro", "BenchmarkDropped", "amd64", map[string]float64{"ns/op": 50}),
	)
	newDoc := mkDoc("bbb",
		// 25% slower on ns/pair: regression.
		rec("repro", "BenchmarkVerifyBatch/t=0.3/simd", "amd64", map[string]float64{"ns/op": 25000, "ns/pair": 285.8}),
		// 30% faster: improvement.
		rec("repro", "BenchmarkVerifyBatch/t=0.1/simd", "amd64", map[string]float64{"ns/op": 11200, "ns/pair": 129.5}),
		// Within the threshold: noise, reported as neither.
		rec("repro", "BenchmarkVerifyBounded/t=0.1", "amd64", map[string]float64{"ns/op": 180.0, "allocs/op": 3}),
		rec("repro", "BenchmarkAdded", "amd64", map[string]float64{"ns/op": 60}),
	)
	regs, imps, missing := compareDocs(oldDoc, newDoc, 10)
	if len(regs) != 2 { // ns/op and ns/pair both regressed on the t=0.3 row
		t.Fatalf("regressions: got %+v, want 2", regs)
	}
	for _, d := range regs {
		if !strings.Contains(d.name, "t=0.3") || d.pct < 20 {
			t.Fatalf("unexpected regression row: %+v", d)
		}
	}
	if len(imps) != 2 {
		t.Fatalf("improvements: got %+v, want 2", imps)
	}
	for _, d := range imps {
		if !strings.Contains(d.name, "t=0.1/simd") || d.pct > -25 {
			t.Fatalf("unexpected improvement row: %+v", d)
		}
	}
	if len(missing) != 2 {
		t.Fatalf("missing: got %+v, want dropped+added rows", missing)
	}
}

func TestCompareDocsThresholdBoundary(t *testing.T) {
	oldDoc := mkDoc("a", rec("repro", "BenchmarkX", "amd64", map[string]float64{"ns/op": 100}))
	// Exactly +10% is not beyond a 10% threshold.
	newDoc := mkDoc("b", rec("repro", "BenchmarkX", "amd64", map[string]float64{"ns/op": 110}))
	if regs, imps, _ := compareDocs(oldDoc, newDoc, 10); len(regs) != 0 || len(imps) != 0 {
		t.Fatalf("exact-threshold delta flagged: regs=%+v imps=%+v", regs, imps)
	}
	newDoc.Records[0].Metrics["ns/op"] = 110.2
	if regs, _, _ := compareDocs(oldDoc, newDoc, 10); len(regs) != 1 {
		t.Fatalf("past-threshold delta not flagged: %+v", regs)
	}
}

func TestCompareDocsArchKeying(t *testing.T) {
	// Same benchmark name on different goarch legs must not cross-diff:
	// the arm64 qemu leg is legitimately slower than native amd64.
	oldDoc := mkDoc("a", rec("repro", "BenchmarkX", "amd64", map[string]float64{"ns/op": 100}))
	newDoc := mkDoc("b", rec("repro", "BenchmarkX", "arm64", map[string]float64{"ns/op": 900}))
	regs, imps, missing := compareDocs(oldDoc, newDoc, 10)
	if len(regs) != 0 || len(imps) != 0 {
		t.Fatalf("cross-arch diff happened: regs=%+v imps=%+v", regs, imps)
	}
	if len(missing) != 2 {
		t.Fatalf("cross-arch rows should be unmatched: %+v", missing)
	}
}

func TestRunCompareReport(t *testing.T) {
	oldDoc := mkDoc("aaa", rec("repro", "BenchmarkX", "amd64", map[string]float64{"ns/op": 100}))
	newDoc := mkDoc("bbb", rec("repro", "BenchmarkX", "amd64", map[string]float64{"ns/op": 150}))
	var buf strings.Builder
	if !runCompare(oldDoc, newDoc, 10, &buf) {
		t.Fatal("50% slowdown not reported as regression")
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "+50.0%") {
		t.Fatalf("report missing regression line:\n%s", out)
	}
	if !strings.Contains(out, "1 regression(s)") {
		t.Fatalf("report missing summary:\n%s", out)
	}

	buf.Reset()
	if runCompare(oldDoc, oldDoc, 10, &buf) {
		t.Fatal("self-compare reported a regression")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	recs, err := parseBench(strings.NewReader("PASS\nok \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from non-bench output", len(recs))
	}
}
