package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.80GHz
BenchmarkVerifyBounded/t=0.1 	14050412	       173.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerifyBatch/t=0.3/simd            	  109737	     20569 ns/op	       231.6 ns/pair	       0 B/op	       0 allocs/op
--- some test log line
PASS
ok  	repro	20.793s
goos: linux
goarch: amd64
pkg: repro/internal/stream
cpu: Intel(R) Xeon(R) CPU @ 2.80GHz
BenchmarkSegmentProbe/T=0.10-8 	 1000000	      1043 ns/op
PASS
ok  	repro/internal/stream	1.201s
`

func TestParseBench(t *testing.T) {
	recs, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[1]
	if r.Name != "BenchmarkVerifyBatch/t=0.3/simd" || r.Pkg != "repro" || r.Iterations != 109737 {
		t.Fatalf("record mismatch: %+v", r)
	}
	if r.Metrics["ns/op"] != 20569 || r.Metrics["ns/pair"] != 231.6 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics mismatch: %+v", r.Metrics)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Fatalf("context mismatch: %+v", r)
	}
	// The third record must carry the second pkg header, not the first.
	if recs[2].Pkg != "repro/internal/stream" {
		t.Fatalf("pkg context not updated: %+v", recs[2])
	}
	if recs[2].Metrics["ns/op"] != 1043 {
		t.Fatalf("single-metric record mismatch: %+v", recs[2].Metrics)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	recs, err := parseBench(strings.NewReader("PASS\nok \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from non-bench output", len(recs))
	}
}
