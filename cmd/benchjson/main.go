// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one benchmark
// artifact per commit (BENCH_<sha>.json) and performance trajectories
// can be diffed across the history without re-running anything.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -commit $(git rev-parse --short HEAD) -o BENCH_abc123.json
//
// Every benchmark result line becomes one record carrying the full
// sub-benchmark name, the iteration count, and every reported metric
// (ns/op, B/op, allocs/op, and custom b.ReportMetric units such as the
// verify engine's ns/pair) keyed by unit. The goos/goarch/pkg/cpu
// header lines are attached to each record so artifacts from different
// CI matrix legs stay self-describing.
//
// Compare mode diffs two artifacts:
//
//	benchjson -compare -threshold 10 BENCH_old.json BENCH_new.json
//
// Each benchmark present in both artifacts (keyed by pkg, name and
// goarch) has its time metrics (ns/op and ns/pair) compared; a metric
// that grew by more than the threshold percentage is a regression and
// the exit status is 1 unless -warn-only is set. Single-run benchmark
// numbers are noisy, so CI runs this warn-only: the report is a tripwire
// for humans, not a merge gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark result line in context.
type Record struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the artifact schema.
type Doc struct {
	Commit     string   `json:"commit,omitempty"`
	RecordedAt string   `json:"recorded_at"`
	Records    []Record `json:"records"`
}

// parseBench scans `go test -bench` output, collecting result lines and
// the goos/goarch/pkg/cpu context that precedes them. Non-benchmark
// lines (PASS, ok, test logs) are ignored.
func parseBench(r io.Reader) ([]Record, error) {
	var (
		recs                   []Record
		goos, goarch, pkg, cpu string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			cpu = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  value unit  [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       fields[0],
			Pkg:        pkg,
			Goos:       goos,
			Goarch:     goarch,
			CPU:        cpu,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		if !bad {
			recs = append(recs, rec)
		}
	}
	return recs, sc.Err()
}

// timeUnits are the metrics compare mode diffs. Memory metrics (B/op,
// allocs/op) are deliberately excluded: the hot paths assert zero
// allocations in tests already, and a 0 -> 0 ratio is meaningless.
var timeUnits = []string{"ns/op", "ns/pair"}

// compareKey identifies the same benchmark across two artifacts. Goarch
// is part of the key so amd64 and arm64 matrix legs never cross-diff.
func compareKey(r Record) string {
	return r.Pkg + "\x00" + r.Name + "\x00" + r.Goarch
}

// delta is one metric's movement between two artifacts.
type delta struct {
	name, unit string
	oldV, newV float64
	pct        float64 // signed percent change; positive = slower
}

// compareDocs diffs the time metrics of every benchmark present in both
// artifacts and splits the movements at the threshold: |pct| above it is
// a regression (slower) or an improvement (faster); the rest is noise.
// Benchmarks present on only one side are returned by name so a renamed
// or dropped benchmark cannot silently vanish from the comparison.
func compareDocs(oldDoc, newDoc Doc, thresholdPct float64) (regs, imps []delta, missing []string) {
	olds := make(map[string]Record, len(oldDoc.Records))
	for _, r := range oldDoc.Records {
		olds[compareKey(r)] = r
	}
	matched := make(map[string]bool, len(newDoc.Records))
	for _, nr := range newDoc.Records {
		k := compareKey(nr)
		or, ok := olds[k]
		if !ok {
			missing = append(missing, "only in new: "+nr.Pkg+" "+nr.Name)
			continue
		}
		matched[k] = true
		for _, unit := range timeUnits {
			ov, okOld := or.Metrics[unit]
			nv, okNew := nr.Metrics[unit]
			if !okOld || !okNew || ov <= 0 {
				continue
			}
			pct := 100 * (nv - ov) / ov
			d := delta{name: nr.Pkg + " " + nr.Name, unit: unit, oldV: ov, newV: nv, pct: pct}
			switch {
			case pct > thresholdPct:
				regs = append(regs, d)
			case pct < -thresholdPct:
				imps = append(imps, d)
			}
		}
	}
	for _, or := range oldDoc.Records {
		if k := compareKey(or); !matched[k] {
			missing = append(missing, "only in old: "+or.Pkg+" "+or.Name)
		}
	}
	return regs, imps, missing
}

func loadDoc(path string) (Doc, error) {
	var doc Doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runCompare prints the comparison report to w and reports whether any
// regression crossed the threshold.
func runCompare(oldDoc, newDoc Doc, thresholdPct float64, w io.Writer) bool {
	regs, imps, missing := compareDocs(oldDoc, newDoc, thresholdPct)
	line := func(tag string, d delta) {
		fmt.Fprintf(w, "%s %-60s %10.1f -> %10.1f %-8s %+6.1f%%\n",
			tag, d.name, d.oldV, d.newV, d.unit, d.pct)
	}
	for _, d := range regs {
		line("REGRESSION ", d)
	}
	for _, d := range imps {
		line("improvement", d)
	}
	for _, m := range missing {
		fmt.Fprintf(w, "unmatched   %s\n", m)
	}
	fmt.Fprintf(w, "benchjson: %d regression(s), %d improvement(s) beyond ±%.0f%% (old %s, new %s)\n",
		len(regs), len(imps), thresholdPct, oldDoc.Commit, newDoc.Commit)
	return len(regs) > 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	commit := flag.String("commit", "", "commit hash to stamp into the artifact")
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two artifacts: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "compare mode: percent slowdown that counts as a regression")
	warnOnly := flag.Bool("warn-only", false, "compare mode: report regressions but exit 0")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("compare mode wants exactly two artifacts: benchjson -compare old.json new.json")
		}
		oldDoc, err := loadDoc(flag.Arg(0))
		if err != nil {
			log.Fatalf("loading old artifact: %v", err)
		}
		newDoc, err := loadDoc(flag.Arg(1))
		if err != nil {
			log.Fatalf("loading new artifact: %v", err)
		}
		if runCompare(oldDoc, newDoc, *threshold, os.Stdout) && !*warnOnly {
			os.Exit(1)
		}
		return
	}

	recs, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatalf("reading stdin: %v", err)
	}
	if len(recs) == 0 {
		log.Fatal("no benchmark result lines on stdin (run with `go test -bench ... | benchjson`)")
	}
	doc := Doc{
		Commit:     *commit,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Records:    recs,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encoding: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("benchjson: %d records -> %s\n", len(recs), *out)
}
