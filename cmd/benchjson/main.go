// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one benchmark
// artifact per commit (BENCH_<sha>.json) and performance trajectories
// can be diffed across the history without re-running anything.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -commit $(git rev-parse --short HEAD) -o BENCH_abc123.json
//
// Every benchmark result line becomes one record carrying the full
// sub-benchmark name, the iteration count, and every reported metric
// (ns/op, B/op, allocs/op, and custom b.ReportMetric units such as the
// verify engine's ns/pair) keyed by unit. The goos/goarch/pkg/cpu
// header lines are attached to each record so artifacts from different
// CI matrix legs stay self-describing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark result line in context.
type Record struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the artifact schema.
type Doc struct {
	Commit     string   `json:"commit,omitempty"`
	RecordedAt string   `json:"recorded_at"`
	Records    []Record `json:"records"`
}

// parseBench scans `go test -bench` output, collecting result lines and
// the goos/goarch/pkg/cpu context that precedes them. Non-benchmark
// lines (PASS, ok, test logs) are ignored.
func parseBench(r io.Reader) ([]Record, error) {
	var (
		recs                   []Record
		goos, goarch, pkg, cpu string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			cpu = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  value unit  [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       fields[0],
			Pkg:        pkg,
			Goos:       goos,
			Goarch:     goarch,
			CPU:        cpu,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		if !bad {
			recs = append(recs, rec)
		}
	}
	return recs, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	commit := flag.String("commit", "", "commit hash to stamp into the artifact")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	recs, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatalf("reading stdin: %v", err)
	}
	if len(recs) == 0 {
		log.Fatal("no benchmark result lines on stdin (run with `go test -bench ... | benchjson`)")
	}
	doc := Doc{
		Commit:     *commit,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Records:    recs,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encoding: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("benchjson: %d records -> %s\n", len(recs), *out)
}
