// Command tsjoin performs an NSLD self-join of tokenized strings read one
// per line, printing the similar pairs — the library's primary operation
// as a command-line tool.
//
// Usage:
//
//	tsjoin -in names.txt -t 0.1 -m 1000 [-matching fuzzy|exact]
//	       [-aligning hungarian|greedy] [-dedup one|both] [-stats]
//
// Output: one line per similar pair, tab-separated:
//
//	<idA> <idB> <NSLD> <nameA> <nameB>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	tsjoin "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsjoin: ")

	in := flag.String("in", "-", "input file with one name per line ('-' for stdin)")
	t := flag.Float64("t", 0.1, "NSLD threshold T in [0,1)")
	m := flag.Int("m", 1000, "max token frequency M (0 = unlimited)")
	matching := flag.String("matching", "fuzzy", "candidate generation: fuzzy | exact")
	aligning := flag.String("aligning", "hungarian", "verification alignment: hungarian | greedy")
	dedup := flag.String("dedup", "one", "dedup strategy: one | both")
	stats := flag.Bool("stats", false, "print pipeline statistics to stderr")
	flag.Parse()

	names, err := readLines(*in)
	if err != nil {
		log.Fatal(err)
	}
	opts := tsjoin.Options{Threshold: *t, MaxTokenFreq: *m}
	switch *matching {
	case "fuzzy":
		opts.Matching = tsjoin.FuzzyTokenMatching
	case "exact":
		opts.Matching = tsjoin.ExactTokenMatching
	default:
		log.Fatalf("unknown -matching %q", *matching)
	}
	switch *aligning {
	case "hungarian":
		opts.Aligning = tsjoin.HungarianAligning
	case "greedy":
		opts.Aligning = tsjoin.GreedyAligning
	default:
		log.Fatalf("unknown -aligning %q", *aligning)
	}
	switch *dedup {
	case "one":
		opts.Dedup = tsjoin.GroupOnOneString
	case "both":
		opts.Dedup = tsjoin.GroupOnBothStrings
	default:
		log.Fatalf("unknown -dedup %q", *dedup)
	}

	pairs, st, err := tsjoin.SelfJoinStats(names, opts)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pairs {
		fmt.Fprintf(w, "%d\t%d\t%.6f\t%s\t%s\n", p.A, p.B, p.NSLD, names[p.A], names[p.B])
	}
	if *stats {
		fmt.Fprintln(os.Stderr, st.String())
		for _, j := range st.Pipeline.Jobs {
			fmt.Fprintln(os.Stderr, "  "+j.String())
		}
	}
}

func readLines(path string) ([]string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var lines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}
